//! The iteration-level serving engine: admits requests, forms batches with a
//! scheduler, prices every iteration with the cost model, and tracks latency
//! metrics. This is the substrate for the end-to-end results of §5.2–§5.4
//! (Figures 12 and 15, Tables 5–7).
//!
//! The engine is **step-able**: [`ServingEngine::submit`] enqueues requests
//! and [`ServingEngine::step`] advances the simulation by exactly one
//! scheduler iteration, returning an [`IterationOutcome`]. The closed-world
//! [`ServingEngine::run`] is a thin loop over `step` and reproduces the
//! pre-stepping reports bit-for-bit; the multi-replica layer in
//! [`crate::Cluster`] interleaves many engines on a shared virtual clock
//! through the same `step` entry point.

use crate::blocks::{blocks_for, BlockId, Cursor, KvChain, BLOCK_TOKENS};
use crate::kvcache::KvCacheManager;
use crate::linear::IterationCostModel;
use crate::metrics::{ReportAccumulator, ServingReport};
use crate::model::ModelConfig;
use crate::request::{Phase, Priority, Request, RequestSpec, TenantId};
use crate::scheduler::{plan_batch, AdmissionDecision, BatchPlan, SchedulerKind};
use crate::speculative::{AcceptanceModel, DecodeMode};
use crate::trace::{FlightRecording, TraceConfig, TraceEventKind, TraceRecorder};
use attn_kernels::{
    canonical_decodes, AttentionStrategy, DecodeRequest, HybridBatch, PrefillChunk,
};
use gpu_sim::GpuConfig;
use std::collections::{HashMap, VecDeque};

/// Upper bound on resident price-cache entries; reaching it clears the cache
/// (a trivially correct eviction policy — in practice serving sweeps produce
/// a few hundred distinct signatures, far below this).
const PRICE_CACHE_MAX_ENTRIES: usize = 1 << 16;

/// Whether the batch-price cache is enabled by default. The `POD_PRICE_CACHE`
/// environment variable is the escape hatch: set it to `0` to price every
/// iteration exactly (e.g. when validating the quantization error).
fn price_cache_default() -> bool {
    std::env::var("POD_PRICE_CACHE")
        .map(|v| v != "0")
        .unwrap_or(true)
}

use attn_kernels::quantize_tokens;

/// Quantized signature of a hybrid batch, the key of the price cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct BatchSignature {
    /// Prefill chunk length (0 when the batch has no prefill).
    chunk_len: usize,
    /// Quantized prior context of the prefill chunk.
    prior_bucket: usize,
    /// Number of decode requests.
    decode_count: usize,
    /// Quantized total decode context (the dominant decode cost term).
    decode_total_bucket: usize,
    /// Quantized maximum decode context (drives decode-kernel splits).
    decode_max_bucket: usize,
    /// Quantized shared-prefix decode KV tokens deduped this iteration
    /// (always 0 when dedup is off, so dedup-free runs key and price
    /// exactly as before the dimension existed).
    decode_dedup_bucket: usize,
    /// Quantized extra speculative-verify query tokens carried by the
    /// decode side (always 0 in autoregressive mode, so speculation-free
    /// runs key and price exactly as before the dimension existed).
    spec_bucket: usize,
}

impl BatchSignature {
    /// Compute the signature of the batch a plan describes without
    /// materializing the batch itself. `dedup_tokens` is the iteration's
    /// shared-prefix decode KV dedup total (0 unless the engine computed
    /// sharing groups for this plan).
    fn of_plan(plan: &BatchPlan, requests: &[Request], dedup_tokens: usize) -> Self {
        let (chunk_len, prior_bucket) = match plan.prefill {
            Some((rid, chunk)) => (chunk, quantize_tokens(requests[rid].prefilled)),
            None => (0, 0),
        };
        let mut total_ctx = 0usize;
        let mut max_ctx = 0usize;
        for &rid in &plan.decodes {
            let ctx = requests[rid].context_len().max(1);
            total_ctx += ctx;
            max_ctx = max_ctx.max(ctx);
        }
        BatchSignature {
            chunk_len,
            prior_bucket,
            decode_count: plan.decodes.len(),
            decode_total_bucket: quantize_tokens(total_ctx),
            decode_max_bucket: quantize_tokens(max_ctx),
            decode_dedup_bucket: quantize_tokens(dedup_tokens),
            spec_bucket: quantize_tokens(plan.spec_tokens),
        }
    }

    /// The canonical batch this signature represents: the batch every member
    /// of the equivalence class is priced as. The decode set comes from
    /// [`canonical_decodes`] — the same equivalence-class definition the
    /// estimator's decode-side memo prices in closed form — so both cache
    /// layers agree on what a signature means.
    fn canonical_batch(&self) -> HybridBatch {
        let prefill = if self.chunk_len > 0 {
            Some(PrefillChunk::new(self.chunk_len, self.prior_bucket))
        } else {
            None
        };
        HybridBatch {
            prefill,
            decodes: canonical_decodes(
                self.decode_count,
                self.decode_total_bucket,
                self.decode_max_bucket,
            ),
            kv_dedup_tokens: self.decode_dedup_bucket,
            spec_verify_tokens: self.spec_bucket,
        }
    }
}

/// How the engine manages KV-cache residency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCachePolicy {
    /// Sarathi-Serve's conservative rule: a request is admitted only when
    /// its full prompt **plus expected output** fits, and is never preempted.
    /// The historical default; golden tests pin it bit-for-bit.
    Conservative,
    /// Paged residency over the block subsystem ([`crate::BlockPool`]):
    /// admission allocates blocks for the prompt only, decode tokens grow
    /// the allocation on demand, and when growth exhausts the pool the most
    /// recently started decode is preempted (swap-out) and later restored by
    /// recomputing its KV.
    Paged {
        /// Whether prompts are matched against the radix prefix index so
        /// shared prefixes skip prefill (with copy-on-write on divergence
        /// and LRU eviction of dead prefixes). With this off, the paged
        /// policy is pure on-demand paging + preemption.
        prefix_caching: bool,
    },
}

impl KvCachePolicy {
    /// Report-label fragment (empty for the conservative default).
    pub fn label_suffix(&self) -> &'static str {
        match self {
            KvCachePolicy::Conservative => "",
            KvCachePolicy::Paged {
                prefix_caching: false,
            } => "+paged",
            KvCachePolicy::Paged {
                prefix_caching: true,
            } => "+prefix",
        }
    }

    /// Whether this policy runs the prefix index.
    pub fn prefix_caching(&self) -> bool {
        matches!(
            self,
            KvCachePolicy::Paged {
                prefix_caching: true
            }
        )
    }
}

/// SLO-aware admission control: what to do with a queued request whose
/// deadline can no longer be met.
///
/// Serving a request that has already blown its TTFT deadline spends chunk
/// budget (and KV capacity) on work that can never count toward goodput —
/// and delays every request queued behind it, poisoning *their* deadlines
/// too. Shedding it instead keeps the batch budget on requests that can
/// still be good throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdmissionPolicy {
    /// Serve every request regardless of deadlines — the historical default;
    /// golden tests pin it bit-for-bit.
    #[default]
    AdmitAll,
    /// Drop (shed) a request at the admission point if its TTFT deadline has
    /// already passed before any of its prompt was computed. Requests
    /// without an [`crate::SloSpec`] are never shed, and neither are
    /// preempted requests (they already produced their first token — the
    /// deadline was decided at first admission).
    DeadlineShed,
}

impl AdmissionPolicy {
    /// Whether `req` should be shed rather than admitted at time `now`.
    fn should_shed(&self, req: &Request, now: f64) -> bool {
        match self {
            AdmissionPolicy::AdmitAll => false,
            AdmissionPolicy::DeadlineShed => {
                req.first_token_time.is_none()
                    && req
                        .spec
                        .slo
                        .is_some_and(|slo| now > req.spec.arrival + slo.ttft_deadline)
            }
        }
    }

    /// Report-label fragment (empty for the admit-all default).
    pub fn label_suffix(&self) -> &'static str {
        match self {
            AdmissionPolicy::AdmitAll => "",
            AdmissionPolicy::DeadlineShed => "+shed",
        }
    }
}

/// Multi-tenant fair-queueing configuration: weighted deficit round-robin
/// over queued prefill work, plus (optionally) priority preemption.
///
/// When attached to a config via [`ServingConfig::with_fair_queue`], the
/// engine keeps a **virtual-token counter per tenant**: every prefill token
/// scheduled for a tenant's request advances that tenant's counter by
/// `1 / weight`, and each iteration the waiting-queue front is given to the
/// tenant with the smallest counter (FIFO within a tenant, smallest
/// [`TenantId`] on exact ties). Heavy tenants thus accumulate virtual time
/// fast and yield the chunked-prefill slot; a tenant that was idle re-enters
/// at the current virtual floor, so credit cannot be banked while away.
///
/// With a single tenant (or when no config is attached) the selection
/// degenerates to plain FCFS and the engine's behavior is **bit-for-bit
/// identical** to a fairness-free run — the inertness pin the golden tests
/// and `fig20_fairness` rely on.
///
/// `preempt_priorities` additionally lets a strictly higher-[`Priority`]
/// request at the queue front evict lower-priority running decodes through
/// the existing paged preemption path (swap-out + recompute) when the block
/// pool is what blocks its admission. Requires [`KvCachePolicy::Paged`];
/// under the conservative policy the flag is ignored (there is no preemption
/// path to reuse). The **admitted** request records each eviction it caused
/// in [`Request::preemptions_inflicted`]; memory-pressure preemptions (decode
/// growth against a full pool) have no single inflictor and are attributed
/// to nobody.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FairQueueConfig {
    /// `(tenant, weight)` overrides; any tenant not listed has weight 1.
    /// Larger weight = larger guaranteed share of prefill slots.
    weights: Vec<(TenantId, f64)>,
    /// Whether higher-priority queue fronts may evict lower-priority running
    /// decodes (paged policy only).
    pub preempt_priorities: bool,
}

impl FairQueueConfig {
    /// Fair queueing with equal weights for every tenant and no priority
    /// preemption.
    pub fn new() -> Self {
        FairQueueConfig::default()
    }

    /// The same configuration with `tenant`'s weight set to `weight`
    /// (relative to the default of 1 for unlisted tenants).
    ///
    /// # Panics
    ///
    /// Panics if `weight` is not positive and finite.
    pub fn with_weight(mut self, tenant: TenantId, weight: f64) -> Self {
        assert!(
            weight > 0.0 && weight.is_finite(),
            "tenant weights must be positive and finite"
        );
        match self.weights.binary_search_by_key(&tenant, |&(t, _)| t) {
            Ok(i) => self.weights[i].1 = weight,
            Err(i) => self.weights.insert(i, (tenant, weight)),
        }
        self
    }

    /// The same configuration with priority preemption on or off.
    pub fn with_priority_preemption(mut self, on: bool) -> Self {
        self.preempt_priorities = on;
        self
    }

    /// The weight of `tenant` (1 unless overridden).
    pub fn weight(&self, tenant: TenantId) -> f64 {
        self.weights
            .binary_search_by_key(&tenant, |&(t, _)| t)
            .map(|i| self.weights[i].1)
            .unwrap_or(1.0)
    }

    /// Report-label fragment for a config that carries fair queueing.
    pub fn label_suffix(&self) -> &'static str {
        "+fair"
    }
}

/// Full configuration of a serving system under test.
///
/// # Builder surface
///
/// Start from a named baseline — [`ServingConfig::vllm`],
/// [`ServingConfig::sarathi`] or [`ServingConfig::sarathi_pod`] — then
/// layer optional subsystems with the `with_*` methods, each of which
/// consumes and returns the config so they chain:
///
/// * [`ServingConfig::with_paged_kv`] — paged KV blocks / prefix caching
/// * [`ServingConfig::with_admission`] — SLO-aware shedding
/// * [`ServingConfig::with_streaming_metrics`] — constant-memory reports
/// * [`ServingConfig::with_fair_queue`] — multi-tenant fairness / priorities
///
/// [`ClusterConfig`](crate::ClusterConfig) wraps a `ServingConfig` for a
/// replica fleet and follows the same convention
/// ([`ClusterConfig::with_roles`](crate::ClusterConfig::with_roles),
/// [`ClusterConfig::with_autoscaler`](crate::ClusterConfig::with_autoscaler),
/// [`ClusterConfig::with_fair_queue`](crate::ClusterConfig::with_fair_queue)),
/// as does per-request construction via
/// [`RequestSpec::builder`](crate::RequestSpec::builder).
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// The model being served.
    pub model: ModelConfig,
    /// The GPU (one tensor-parallel shard) it runs on.
    pub gpu: GpuConfig,
    /// Batch-formation policy.
    pub scheduler: SchedulerKind,
    /// How hybrid-batch attention is computed.
    pub attention: AttentionStrategy,
    /// Maximum concurrent requests in the decode phase.
    pub max_batch_size: usize,
    /// Override for the KV-cache capacity in tokens (defaults to what fits in
    /// HBM after weights).
    pub kv_capacity_tokens: Option<usize>,
    /// Whether the engine memoizes iteration prices by quantized batch
    /// signature. Defaults to on; set the `POD_PRICE_CACHE=0` environment
    /// variable (or this field) to price every iteration exactly.
    pub price_cache: bool,
    /// KV-cache residency policy (conservative admission vs. paged blocks
    /// with prefix sharing and preemption).
    pub kv_policy: KvCachePolicy,
    /// Prefix-shared decode attention (CoDec-style KV dedup): each
    /// iteration, resident decodes holding the same shared-prefix block
    /// chain are grouped, the scheduler co-batches each group contiguously,
    /// and the batch is priced with the group's shared KV streamed once
    /// instead of once per member (see
    /// [`HybridBatch::kv_dedup_tokens`](attn_kernels::HybridBatch)). Only
    /// active under [`KvCachePolicy::Paged`] with prefix caching — the
    /// prefix index is where sharing is proven — and ignored otherwise.
    /// Defaults to off, which is bit-for-bit inert.
    pub decode_dedup: bool,
    /// SLO-aware admission control (shed vs. serve requests whose deadlines
    /// are already unmeetable). Defaults to [`AdmissionPolicy::AdmitAll`].
    pub admission: AdmissionPolicy,
    /// Streaming constant-memory metrics: fold each request into a
    /// [`crate::ReportAccumulator`] the moment it finishes and drop its
    /// per-token sample buffer. Counts, means, maxima and SLO tallies stay
    /// exact; report percentiles come from [`crate::QuantileSketch`]es
    /// (within that type's documented error bound) instead of exact
    /// selection. Off by default — the exact sample-buffered path is
    /// bit-for-bit pinned by the golden tests; fleet-scale trace replay
    /// turns this on.
    pub streaming_metrics: bool,
    /// How decode rounds mint tokens: plain autoregressive (the default,
    /// bit-for-bit pinned by the golden tests) or speculative
    /// draft-then-verify (see [`DecodeMode`] and
    /// [`ServingConfig::with_speculative`]). In speculative mode every
    /// resident decode proposes up to `k` draft tokens per round on the
    /// draft model, the verify step rides the hybrid batch as extra
    /// prefill-shaped query tokens budgeted against the Sarathi chunk, and
    /// rejected suffixes roll back through the paged-KV free paths.
    pub decode_mode: DecodeMode,
    /// Multi-tenant fair queueing and priority preemption. Defaults to
    /// `None` (plain FCFS admission) — the inert default the golden tests
    /// pin bit-for-bit; see [`FairQueueConfig`].
    pub fair_queue: Option<FairQueueConfig>,
    /// Request-lifecycle tracing into a per-replica flight recorder (see
    /// [`crate::trace`]). Defaults to `None`: no recorder is allocated, no
    /// event is constructed, and the simulation is bit-for-bit identical to
    /// an untraced run — tracing is purely observational either way, so the
    /// *report* is identical even when this is `Some`.
    pub tracing: Option<TraceConfig>,
}

impl ServingConfig {
    /// The original vLLM baseline: prefill-prioritizing scheduling with
    /// FlashAttention kernels.
    pub fn vllm(model: ModelConfig, gpu: GpuConfig) -> Self {
        ServingConfig {
            model,
            gpu,
            scheduler: SchedulerKind::Vllm,
            attention: AttentionStrategy::FaSerial,
            max_batch_size: 256,
            kv_capacity_tokens: None,
            price_cache: price_cache_default(),
            kv_policy: KvCachePolicy::Conservative,
            decode_dedup: false,
            admission: AdmissionPolicy::AdmitAll,
            streaming_metrics: false,
            decode_mode: DecodeMode::Autoregressive,
            fair_queue: None,
            tracing: None,
        }
    }

    /// Sarathi-Serve with FlashAttention kernels (the paper's "Sarathi").
    pub fn sarathi(model: ModelConfig, gpu: GpuConfig, chunk_size: usize) -> Self {
        ServingConfig {
            model,
            gpu,
            scheduler: SchedulerKind::Sarathi { chunk_size },
            attention: AttentionStrategy::FaSerial,
            max_batch_size: 256,
            kv_capacity_tokens: None,
            price_cache: price_cache_default(),
            kv_policy: KvCachePolicy::Conservative,
            decode_dedup: false,
            admission: AdmissionPolicy::AdmitAll,
            streaming_metrics: false,
            decode_mode: DecodeMode::Autoregressive,
            fair_queue: None,
            tracing: None,
        }
    }

    /// Sarathi-Serve with POD-Attention (the paper's "Sarathi+POD").
    pub fn sarathi_pod(model: ModelConfig, gpu: GpuConfig, chunk_size: usize) -> Self {
        ServingConfig {
            attention: AttentionStrategy::Pod,
            ..ServingConfig::sarathi(model, gpu, chunk_size)
        }
    }

    /// The same configuration on the paged KV policy, with or without prefix
    /// caching.
    pub fn with_paged_kv(mut self, prefix_caching: bool) -> Self {
        self.kv_policy = KvCachePolicy::Paged { prefix_caching };
        self
    }

    /// The same configuration with prefix-shared decode attention (KV
    /// dedup) on or off (see [`ServingConfig::decode_dedup`]). Takes effect
    /// only under the paged KV policy with prefix caching
    /// ([`ServingConfig::with_paged_kv`] with `prefix_caching = true`).
    pub fn with_decode_dedup(mut self, dedup: bool) -> Self {
        self.decode_dedup = dedup;
        self
    }

    /// The same configuration with an SLO-aware admission policy.
    pub fn with_admission(mut self, admission: AdmissionPolicy) -> Self {
        self.admission = admission;
        self
    }

    /// The same configuration with streaming constant-memory metrics on or
    /// off (see [`ServingConfig::streaming_metrics`]).
    pub fn with_streaming_metrics(mut self, streaming: bool) -> Self {
        self.streaming_metrics = streaming;
        self
    }

    /// The same configuration decoding speculatively: every decode round
    /// drafts `k` tokens on `draft` (a scaled-down copy of the target
    /// model), verifies them in one prefill-shaped op inside the hybrid
    /// batch, and keeps the prefix `acceptance` accepts (plus the target's
    /// correction token on the first rejection). See [`DecodeMode`].
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (a zero-depth round is plain autoregressive
    /// decode; use the default mode for that).
    pub fn with_speculative(
        mut self,
        k: usize,
        draft: crate::DraftModelConfig,
        acceptance: AcceptanceModel,
    ) -> Self {
        assert!(k > 0, "speculation depth must be at least 1");
        self.decode_mode = DecodeMode::Speculative {
            k,
            draft,
            acceptance,
        };
        self
    }

    /// The same configuration with multi-tenant fair queueing (and, per the
    /// [`FairQueueConfig`], priority preemption) attached.
    pub fn with_fair_queue(mut self, fair_queue: FairQueueConfig) -> Self {
        self.fair_queue = Some(fair_queue);
        self
    }

    /// The same configuration with request-lifecycle tracing into a flight
    /// recorder (see [`crate::trace`]). Collect the recording after a run
    /// with [`ServingEngine::flight_recording`] (or
    /// [`Cluster::flight_recording`](crate::Cluster::flight_recording) for a
    /// fleet). Tracing never changes simulation outcomes; its only costs are
    /// recorder memory (bounded by [`TraceConfig::capacity`]) and the
    /// recording time itself.
    pub fn with_tracing(mut self, tracing: TraceConfig) -> Self {
        self.tracing = Some(tracing);
        self
    }

    /// Label used in reports, e.g. `"Sarathi(chunk=1024)+POD"` (with
    /// `"+paged"` / `"+prefix"` appended for the paged KV policies,
    /// `"+dedup"` for prefix-shared decode, `"+shed"` for deadline-shedding
    /// admission, `"+fair"` for fair-queueing configs, and `"+spec"` for
    /// speculative decode).
    pub fn system_label(&self) -> String {
        let kv = self.kv_policy.label_suffix();
        let dedup = if self.decode_dedup && self.kv_policy.prefix_caching() {
            "+dedup"
        } else {
            ""
        };
        let adm = self.admission.label_suffix();
        let fair = self.fair_queue.as_ref().map_or("", |f| f.label_suffix());
        let spec = if self.decode_mode.is_speculative() {
            "+spec"
        } else {
            ""
        };
        let attn = match self.attention {
            AttentionStrategy::Pod => "+POD",
            AttentionStrategy::FaSerial => "",
            other => {
                return format!(
                    "{}[{}]{}{}{}{}{}",
                    self.scheduler.label(),
                    other,
                    kv,
                    dedup,
                    adm,
                    fair,
                    spec
                )
            }
        };
        format!(
            "{}{}{}{}{}{}{}",
            self.scheduler.label(),
            attn,
            kv,
            dedup,
            adm,
            fair,
            spec
        )
    }
}

/// What one call to [`ServingEngine::step`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IterationOutcome {
    /// One scheduler iteration executed.
    Ran(IterationStats),
    /// Nothing is runnable right now, but a submitted request arrives at the
    /// given simulated time; call `step` again at (or after) that time.
    IdleUntil(f64),
    /// Every submitted request has finished.
    Drained,
    /// Requests are queued but the front one can never be admitted: it needs
    /// more KV-cache capacity than the GPU offers. A configuration error
    /// rather than a load condition.
    Blocked {
        /// KV-cache tokens the stuck request needs.
        needed_tokens: usize,
        /// Total KV-cache capacity of the replica.
        capacity_tokens: usize,
    },
}

/// Per-iteration accounting returned by [`ServingEngine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct IterationStats {
    /// Simulated time at which the iteration started.
    pub started_at: f64,
    /// Simulated time at which the iteration completed (the engine clock).
    pub completed_at: f64,
    /// Modeled execution time of the iteration in seconds.
    pub duration: f64,
    /// Whether the batch carried both a prefill chunk and decodes.
    pub hybrid: bool,
    /// Prefill tokens processed this iteration.
    pub prefill_tokens: usize,
    /// Decode tokens generated this iteration.
    pub decode_tokens: usize,
    /// Requests that reached their final token this iteration.
    pub newly_finished: usize,
}

/// A completed prefill packaged for migration to a decode replica
/// (disaggregated serving): the request record — with its latency
/// bookkeeping, since TTFT was stamped when this replica minted the first
/// token — plus the serialized KV chain and the timing the cluster's
/// migration cost model prices the transfer from.
#[derive(Debug, Clone)]
pub struct PrefillHandoff {
    /// The request, prefill complete and first token minted.
    pub request: Request,
    /// Serialized KV chain (context tokens and the blocks backing them).
    pub chain: KvChain,
    /// Simulated time the prefill completed; the transfer starts no earlier.
    pub export_time: f64,
    /// Seconds the prefill computation spanned on the source replica — the
    /// window a layer-wise-streaming transfer can overlap with compute
    /// (ISO-style), since each layer's KV is final as soon as it is
    /// computed.
    pub prefill_window: f64,
}

/// A migrated-in request waiting for its KV transfer to complete and for
/// residency on this replica.
#[derive(Debug, Clone)]
struct PendingImport {
    /// When the KV chain finishes arriving (per the migration cost model).
    available_at: f64,
    request: Request,
    chain: KvChain,
}

/// Per-request paged-KV state: its block table and how far its chain is
/// registered in the prefix index.
#[derive(Debug, Clone, Default)]
struct RequestKv {
    /// Blocks backing this request's context, in stream order. The leading
    /// `shared` entries were acquired from the prefix cache.
    blocks: Vec<BlockId>,
    /// Trie position after the last indexed block.
    cursor: Cursor,
    /// Leading blocks registered in the prefix index (shared or own).
    indexed: usize,
    /// Leading blocks acquired from the cache at admission.
    shared: usize,
    /// Indexing hit an existing equal chain (a concurrent identical prompt
    /// won the race); further blocks stay private.
    index_stalled: bool,
}

/// Mutable simulation state of one replica: queues, KV cache, clock and the
/// price cache. Kept separate from the engine's immutable configuration so
/// `step` can borrow the cost model and the state independently.
#[derive(Debug, Clone)]
struct EngineState {
    requests: Vec<Request>,
    /// Request ids sorted by arrival time, not yet visible to the scheduler.
    arrivals: VecDeque<usize>,
    waiting: VecDeque<usize>,
    running: Vec<usize>,
    reserved: Vec<bool>,
    /// Paged-KV bookkeeping, parallel to `requests` (unused under the
    /// conservative policy).
    tables: Vec<RequestKv>,
    kv: KvCacheManager,
    clock: f64,
    iterations: usize,
    hybrid_iterations: usize,
    busy_time: f64,
    price_cache: HashMap<BatchSignature, f64>,
    cache_hits: usize,
    cache_misses: usize,
    /// Prefill tokens actually scheduled (cached-prefix tokens never are).
    prefill_tokens_scheduled: usize,
    /// Prompt tokens satisfied from the prefix cache at admissions.
    cached_prefix_tokens: usize,
    /// Cached blocks acquired (shared) across all admissions.
    blocks_reused: usize,
    /// Copy-on-write block copies made at admissions.
    cow_copies: usize,
    /// Decode KV tokens whose HBM reads were deduped away by prefix-shared
    /// decode grouping, summed over iterations (0 unless
    /// [`ServingConfig::decode_dedup`] is active).
    decode_kv_tokens_deduped: usize,
    /// Decode preemptions (swap-outs) forced by pool exhaustion.
    preemptions: usize,
    /// Speculative draft-then-verify rounds executed (one per decode per
    /// iteration in speculative mode; 0 otherwise).
    spec_rounds: usize,
    /// Draft tokens verification accepted, summed over all rounds.
    draft_tokens_accepted: usize,
    /// Draft tokens verification rejected and rolled back, summed over all
    /// rounds.
    draft_tokens_rejected: usize,
    /// Requests that completed prefill and are parked for migration pickup
    /// (prefill-export mode only), with their already-serialized KV chains.
    /// The KV residency is released the moment a request parks — the
    /// transfer is modeled as overlappable communication that does not
    /// occupy source HBM — so parked exports can never deadlock admission.
    pending_export: Vec<(usize, KvChain)>,
    /// Migrated-in requests waiting on transfer completion / residency,
    /// ordered by `available_at` (ties keep insertion order).
    pending_imports: VecDeque<PendingImport>,
    /// Requests handed off to a decode replica from here.
    migrated_out: usize,
    /// Requests that resumed decoding here after a handoff.
    migrated_in: usize,
    /// KV tokens shipped out of this replica across all handoffs.
    migrated_tokens_out: usize,
    /// Total seconds migrated-in requests spent between first token (on the
    /// source) and decode admission here (transfer + residency queueing).
    migration_stall_time: f64,
    /// Streaming-metrics accumulator (`Some` exactly when the config's
    /// `streaming_metrics` is on): finished and shed requests fold in here
    /// the moment they happen, after which their token-time buffers are
    /// dropped.
    accumulator: Option<ReportAccumulator>,
    /// Token-time samples currently buffered across this replica's request
    /// records — the resident sample memory proxy (8 bytes each).
    live_token_samples: usize,
    /// High-water mark of `live_token_samples`. In streaming mode this stays
    /// bounded by in-flight work instead of growing with the whole trace.
    peak_token_samples: usize,
    /// Per-tenant virtual-token counters for fair queueing, sorted by tenant
    /// id (empty and untouched unless the config carries a
    /// [`FairQueueConfig`]). A tenant's counter advances by
    /// `scheduled prefill tokens / weight`.
    fair_vtime: Vec<(TenantId, f64)>,
    /// Monotone floor of the virtual clock: the smallest counter among
    /// tenants competing at the most recent selection. Tenants activating
    /// (first request, or returning from idle) are lifted to it so virtual
    /// time cannot be banked while away.
    fair_floor: f64,
    /// Flight recorder (`Some` exactly when the config carries a
    /// [`TraceConfig`]): every lifecycle / iteration / KV / migration event
    /// lands here, stamped on the virtual clock. Purely observational —
    /// nothing in the simulation reads it back.
    recorder: Option<TraceRecorder>,
}

impl EngineState {
    fn new(kv_capacity: usize, streaming_metrics: bool, tracing: Option<&TraceConfig>) -> Self {
        EngineState {
            requests: Vec::new(),
            arrivals: VecDeque::new(),
            waiting: VecDeque::new(),
            running: Vec::new(),
            reserved: Vec::new(),
            tables: Vec::new(),
            kv: KvCacheManager::new(kv_capacity),
            clock: 0.0,
            iterations: 0,
            hybrid_iterations: 0,
            busy_time: 0.0,
            price_cache: HashMap::new(),
            cache_hits: 0,
            cache_misses: 0,
            prefill_tokens_scheduled: 0,
            cached_prefix_tokens: 0,
            blocks_reused: 0,
            cow_copies: 0,
            decode_kv_tokens_deduped: 0,
            preemptions: 0,
            spec_rounds: 0,
            draft_tokens_accepted: 0,
            draft_tokens_rejected: 0,
            pending_export: Vec::new(),
            pending_imports: VecDeque::new(),
            migrated_out: 0,
            migrated_in: 0,
            migrated_tokens_out: 0,
            migration_stall_time: 0.0,
            accumulator: streaming_metrics.then(ReportAccumulator::new),
            live_token_samples: 0,
            peak_token_samples: 0,
            fair_vtime: Vec::new(),
            fair_floor: 0.0,
            recorder: tracing.map(|cfg| TraceRecorder::new(cfg.clone())),
        }
    }

    /// Record one trace event at time `t` if tracing is on — the single
    /// choke point every instrumentation site goes through, so tracing off
    /// is one branch on a `None`.
    #[inline]
    fn trace(&mut self, t: f64, kind: impl FnOnce() -> TraceEventKind) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record(t, kind());
        }
    }

    /// Mutable virtual-time counter of `tenant`, created at the current
    /// floor on first sight (the activation lift).
    fn fair_vtime_entry(&mut self, tenant: TenantId) -> &mut f64 {
        let i = match self.fair_vtime.binary_search_by_key(&tenant, |&(t, _)| t) {
            Ok(i) => i,
            Err(i) => {
                self.fair_vtime.insert(i, (tenant, self.fair_floor));
                i
            }
        };
        &mut self.fair_vtime[i].1
    }

    /// Preempt a decoding request: reclaim its blocks (indexed ones stay
    /// cached for its own restore or other sharers), move it to the front of
    /// the waiting queue, and mark the full recompute it owes.
    fn preempt(&mut self, rid: usize) {
        let table = std::mem::take(&mut self.tables[rid]);
        let t = self.clock;
        self.trace(t, || TraceEventKind::Preempt { request: rid });
        let freed = table.blocks.len();
        self.trace(t, || TraceEventKind::KvFree {
            request: rid,
            blocks: freed,
        });
        self.kv.release_blocks(&table.blocks);
        self.requests[rid].preempt();
        self.running.retain(|&r| r != rid);
        self.reserved[rid] = false;
        // Re-queue ahead of unadmitted work but *behind* any already-admitted
        // (mid-prefill) request: that one holds blocks, and only the queue
        // front ever gets scheduled — parking an unadmittable victim in front
        // of it would starve the one request able to free capacity.
        let at = self
            .waiting
            .iter()
            .take_while(|&&r| self.reserved[r])
            .count();
        self.waiting.insert(at, rid);
        self.preemptions += 1;
    }

    /// Ensure every request that will decode this iteration has a block for
    /// its next token — or, in speculative mode, for its whole drafted
    /// width of up to `spec_k` tokens (speculative allocation; the rejected
    /// tail is released after verification) — preempting the most recently
    /// started decodes when the pool is exhausted (LIFO victim selection:
    /// the youngest decode loses the least recomputation). `spec_k = 0`
    /// (autoregressive) grows by exactly one token, bit-for-bit the
    /// pre-speculation arithmetic.
    fn grow_decode_blocks(&mut self, decode_cap: usize, spec_k: usize) {
        let mut i = 0;
        while i < self.running.len().min(decode_cap) {
            let rid = self.running[i];
            let width = self.requests[rid].spec_width(spec_k);
            let needed = blocks_for(self.requests[rid].context_len() + width);
            if self.tables[rid].blocks.len() >= needed {
                i += 1;
                continue;
            }
            let short = needed - self.tables[rid].blocks.len();
            match self.kv.alloc_blocks(short) {
                Some(fresh) => {
                    self.tables[rid].blocks.extend(fresh);
                    i += 1;
                }
                None => {
                    // Shed the newest decode and retry; if that is the very
                    // request being grown, it preempts itself.
                    let victim = *self.running.last().expect("rid is in running");
                    self.preempt(victim);
                }
            }
        }
    }

    /// Co-batching hint for prefix-shared decode: stably reorder the running
    /// decode set so requests holding the same shared-prefix block chain sit
    /// contiguously, in order of each group's first member. Requests with no
    /// shared blocks are singleton groups at their own positions, so the
    /// permutation is the identity unless at least two residents actually
    /// share a chain. Running this *before* decode growth and planning keeps
    /// the growth set, the Sarathi decode cap and the LIFO preemption victim
    /// all consistent with the co-batched order.
    fn cobatch_shared_prefixes(&mut self) {
        let mut group_of: HashMap<&[BlockId], usize> = HashMap::new();
        let mut next_group = 0usize;
        let mut ranked: Vec<(usize, usize, usize)> = Vec::with_capacity(self.running.len());
        for (i, &rid) in self.running.iter().enumerate() {
            let table = &self.tables[rid];
            let group = if table.shared == 0 {
                let g = next_group;
                next_group += 1;
                g
            } else {
                *group_of
                    .entry(&table.blocks[..table.shared])
                    .or_insert_with(|| {
                        let g = next_group;
                        next_group += 1;
                        g
                    })
            };
            ranked.push((group, i, rid));
        }
        // Lexicographic (group, original position): stable by construction.
        ranked.sort_unstable();
        let reordered: Vec<usize> = ranked.into_iter().map(|(_, _, rid)| rid).collect();
        self.running = reordered;
    }

    /// Per-iteration shared-prefix dedup summary of the planned decode set:
    /// `(groups, tokens)` where `groups` counts shared-block chains held by
    /// at least two of this iteration's decodes and `tokens` is the decode
    /// KV the grouped pass does **not** re-read — `(members − 1) × shared
    /// tokens` summed over those groups. Requests whose admission acquired
    /// no cached blocks (`shared == 0`) never group.
    fn shared_decode_dedup(&self, decodes: &[usize]) -> (usize, usize) {
        let mut chains: HashMap<&[BlockId], usize> = HashMap::new();
        for &rid in decodes {
            let table = &self.tables[rid];
            if table.shared == 0 {
                continue;
            }
            *chains.entry(&table.blocks[..table.shared]).or_insert(0) += 1;
        }
        let mut groups = 0usize;
        let mut tokens = 0usize;
        for (chain, members) in chains {
            if members > 1 {
                groups += 1;
                tokens += (members - 1) * chain.len() * BLOCK_TOKENS;
            }
        }
        (groups, tokens)
    }

    /// Register this request's newly computed full blocks in the prefix
    /// index (no-op for opaque content or once indexing stalled on an
    /// existing equal chain).
    fn index_computed_blocks(&mut self, rid: usize) {
        let req = &self.requests[rid];
        if !req.spec.content.is_shareable() || self.tables[rid].index_stalled {
            return;
        }
        let computed_full = (req.context_len() / BLOCK_TOKENS).min(self.tables[rid].blocks.len());
        let table = &mut self.tables[rid];
        if computed_full > table.indexed {
            let want = computed_full - table.indexed;
            let (cursor, registered) = self.kv.extend_index(
                table.cursor,
                req.spec.content,
                table.indexed,
                &table.blocks[table.indexed..computed_full],
            );
            table.cursor = cursor;
            table.indexed += registered;
            table.index_stalled = registered < want;
        }
    }

    /// Release a finished request's residency according to the KV policy.
    fn release_finished(&mut self, rid: usize, policy: KvCachePolicy) {
        match policy {
            KvCachePolicy::Conservative => {
                if self.reserved[rid] {
                    self.kv.release(self.requests[rid].spec.total_tokens());
                    self.reserved[rid] = false;
                }
            }
            KvCachePolicy::Paged { prefix_caching } => {
                if prefix_caching {
                    // Index the decode region too, so multi-turn follow-ups
                    // whose prompts embed this response hit the cache.
                    self.index_computed_blocks(rid);
                }
                let table = std::mem::take(&mut self.tables[rid]);
                let t = self.clock;
                let freed = table.blocks.len();
                self.trace(t, || TraceEventKind::KvFree {
                    request: rid,
                    blocks: freed,
                });
                self.kv.release_blocks(&table.blocks);
                self.reserved[rid] = false;
            }
        }
    }
}

/// The serving simulator for one replica.
///
/// Two ways to drive it:
///
/// * **Closed world** — [`ServingEngine::run`] serves a whole workload to
///   completion and returns the aggregated [`ServingReport`].
/// * **Stepping** — [`ServingEngine::submit`] requests (in arrival order) and
///   [`ServingEngine::step`] one iteration at a time; `run` is itself a loop
///   over `step`, so the two produce identical reports. Stepping is what the
///   multi-replica [`crate::Cluster`] layer builds on.
///
/// # Examples
///
/// ```
/// use gpu_sim::GpuConfig;
/// use llm_serving::{ModelConfig, RequestSpec, ServingConfig, ServingEngine};
///
/// let config = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
/// let engine = ServingEngine::new(config);
/// let requests = vec![RequestSpec::new(0.0, 4096, 64); 4];
/// let report = engine.run(requests);
/// assert_eq!(report.completed, 4);
/// ```
///
/// Stepping the same workload by hand:
///
/// ```
/// use gpu_sim::GpuConfig;
/// use llm_serving::{IterationOutcome, ModelConfig, RequestSpec, ServingConfig, ServingEngine};
///
/// let config = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
/// let mut engine = ServingEngine::new(config);
/// for spec in vec![RequestSpec::new(0.0, 4096, 64); 4] {
///     engine.submit(spec);
/// }
/// loop {
///     match engine.step(engine.clock()) {
///         IterationOutcome::Ran(_) => {}
///         IterationOutcome::IdleUntil(t) => { engine.step(t); }
///         IterationOutcome::Drained => break,
///         IterationOutcome::Blocked { .. } => panic!("undersized KV cache"),
///     }
/// }
/// assert_eq!(engine.report().completed, 4);
/// ```
#[derive(Debug, Clone)]
pub struct ServingEngine {
    config: ServingConfig,
    cost: IterationCostModel,
    /// Iteration cost model of the draft model (`Some` exactly when the
    /// config decodes speculatively with a non-free drafter): prices the
    /// `k` draft proposal passes each speculative round runs before its
    /// verify step.
    draft_cost: Option<IterationCostModel>,
    kv_capacity: usize,
    /// Prefill-only mode (disaggregated serving): requests that complete
    /// their prefill here are parked for [`ServingEngine::take_ready_handoffs`]
    /// instead of decoding locally.
    export_prefills: bool,
    state: EngineState,
}

impl ServingEngine {
    /// Create an engine from a configuration, with an empty request queue.
    pub fn new(config: ServingConfig) -> Self {
        // `price_cache` gates both memoization layers: the engine's
        // batch-signature cache and the estimator's side-cost memo.
        let cost = if config.price_cache {
            IterationCostModel::new(config.model.clone(), config.gpu.clone())
        } else {
            IterationCostModel::exact(config.model.clone(), config.gpu.clone())
        };
        // The drafter is priced through the same estimator stack as the
        // target, just over a scaled-down model. A free drafter (scale 0)
        // resolves to no model and costs exactly nothing.
        let draft_cost = match &config.decode_mode {
            DecodeMode::Autoregressive => None,
            DecodeMode::Speculative { draft, .. } => draft.resolve(&config.model).map(|model| {
                if config.price_cache {
                    IterationCostModel::new(model, config.gpu.clone())
                } else {
                    IterationCostModel::exact(model, config.gpu.clone())
                }
            }),
        };
        let kv_capacity = config
            .kv_capacity_tokens
            .unwrap_or_else(|| config.model.kv_cache_capacity_tokens(&config.gpu));
        let state = EngineState::new(
            kv_capacity,
            config.streaming_metrics,
            config.tracing.as_ref(),
        );
        ServingEngine {
            config,
            cost,
            draft_cost,
            kv_capacity,
            export_prefills: false,
            state,
        }
    }

    /// Put this replica in (or out of) prefill-only mode: with exporting on,
    /// a request that completes its prefill — first token minted, TTFT
    /// stamped — is parked for [`ServingEngine::take_ready_handoffs`]
    /// instead of entering the local decode set. The cluster layer sets this
    /// for [`crate::ReplicaRole::PrefillOnly`] replicas.
    pub fn set_export_prefills(&mut self, export: bool) {
        self.export_prefills = export;
    }

    /// Whether this replica exports completed prefills instead of decoding.
    pub fn exports_prefills(&self) -> bool {
        self.export_prefills
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// Total KV-cache capacity of this replica in tokens.
    pub fn kv_capacity_tokens(&self) -> usize {
        self.kv_capacity
    }

    /// Current simulated time: the completion time of the last iteration this
    /// engine executed (0 before the first).
    pub fn clock(&self) -> f64 {
        self.state.clock
    }

    /// Total modeled execution time across all iterations so far. The
    /// difference between [`clock`](Self::clock) and this is time the replica
    /// sat idle waiting for arrivals.
    pub fn busy_time(&self) -> f64 {
        self.state.busy_time
    }

    /// Submit one request for serving and return its id within this engine.
    /// Requests may be submitted at any point between steps; arrival times
    /// are honored (a request is invisible to the scheduler until the clock
    /// reaches its arrival).
    ///
    /// # Panics
    ///
    /// Panics on a NaN arrival time (it would never compare as due and the
    /// engine could never drain).
    pub fn submit(&mut self, spec: RequestSpec) -> usize {
        assert!(!spec.arrival.is_nan(), "arrival times must not be NaN");
        let id = self.state.requests.len();
        self.state.requests.push(Request::new(id, spec));
        self.state.reserved.push(false);
        self.state.tables.push(RequestKv::default());
        // Keep the pending-arrival queue sorted; insertion after equal
        // arrivals preserves submission order for ties, matching the stable
        // sort the closed-world `run` historically used.
        let at = self
            .state
            .arrivals
            .partition_point(|&r| self.state.requests[r].spec.arrival <= spec.arrival);
        self.state.arrivals.insert(at, id);
        id
    }

    /// Requests submitted so far (finished or not), in submission order.
    pub fn requests(&self) -> &[Request] {
        &self.state.requests
    }

    /// Pull every request that has not started (no KV residency, no tokens
    /// computed) out of this replica's queues and return its spec, marking
    /// the local record as reassigned. The cluster autoscaler calls this
    /// when draining a replica for scale-in: the in-flight requests (admitted
    /// mid-prefill or decoding) stay and finish here, while the returned
    /// specs are re-routed to surviving replicas. Returned in queue order
    /// (waiting front first, then not-yet-due arrivals by arrival time).
    pub fn reclaim_unstarted(&mut self) -> Vec<RequestSpec> {
        let st = &mut self.state;
        let mut specs = Vec::new();
        let mut kept = VecDeque::new();
        for &rid in &st.waiting {
            if st.reserved[rid] {
                kept.push_back(rid);
            } else {
                st.requests[rid].reassigned = true;
                specs.push(st.requests[rid].spec);
            }
        }
        st.waiting = kept;
        for &rid in &st.arrivals {
            st.requests[rid].reassigned = true;
            specs.push(st.requests[rid].spec);
        }
        st.arrivals.clear();
        specs
    }

    /// Take every request that completed its prefill since the last call and
    /// package each as a [`PrefillHandoff`]: its KV residency is released
    /// here (serialized into the handoff's [`KvChain`]; blocks already
    /// registered in the prefix index stay cached for future sharers), the
    /// local record is marked migrated-out and excluded from this replica's
    /// metrics, and the returned handoffs carry the latency bookkeeping to
    /// the decode replica. Only meaningful in prefill-export mode.
    pub fn take_ready_handoffs(&mut self) -> Vec<PrefillHandoff> {
        let st = &mut self.state;
        let mut out = Vec::with_capacity(st.pending_export.len());
        for (rid, chain) in std::mem::take(&mut st.pending_export) {
            let export_time = st.requests[rid]
                .first_token_time
                .expect("exported requests completed their prefill");
            let prefill_window =
                export_time - st.requests[rid].prefill_start_time.unwrap_or(export_time);
            let request = st.requests[rid].clone();
            st.requests[rid].migrated_out = true;
            st.migrated_out += 1;
            st.migrated_tokens_out += chain.tokens;
            out.push(PrefillHandoff {
                request,
                chain,
                export_time,
                prefill_window,
            });
        }
        out
    }

    /// Hand a migrated request to this replica: its KV chain finishes
    /// arriving at `available_at` (as priced by the cluster's migration
    /// model), after which the next [`ServingEngine::step`] adopts the chain
    /// into the local KV cache and resumes decoding. If the cache is full at
    /// delivery, the import waits for residents to finish (the waiting time
    /// is accounted as migration stall).
    ///
    /// # Panics
    ///
    /// Panics if the handoff's request is not prefill-complete.
    pub fn import_handoff(&mut self, handoff: PrefillHandoff, available_at: f64) {
        assert_eq!(
            handoff.request.phase(),
            Phase::Decoding,
            "only prefill-complete requests migrate"
        );
        let at = self
            .state
            .pending_imports
            .partition_point(|imp| imp.available_at <= available_at);
        self.state.pending_imports.insert(
            at,
            PendingImport {
                available_at,
                request: handoff.request,
                chain: handoff.chain,
            },
        );
    }

    /// Completed prefills parked for migration pickup.
    pub fn ready_handoffs(&self) -> usize {
        self.state.pending_export.len()
    }

    /// Migrated-in requests whose transfer or residency is still pending.
    pub fn pending_imports(&self) -> usize {
        self.state.pending_imports.len()
    }

    /// Whether every submitted request has finished (including any parked
    /// handoffs being picked up and any migrated-in arrivals being served).
    pub fn is_drained(&self) -> bool {
        self.state.arrivals.is_empty()
            && self.state.waiting.is_empty()
            && self.state.running.is_empty()
            && self.state.pending_export.is_empty()
            && self.state.pending_imports.is_empty()
    }

    /// Requests currently in their decode phase.
    pub fn running_decodes(&self) -> usize {
        self.state.running.len()
    }

    /// Prompt tokens still to be prefilled across every request this replica
    /// owns — the queued-or-admitted ones *and* submitted ones whose arrival
    /// the clock has not reached yet (a router assigns work the instant it
    /// arrives, so committed-but-unadmitted prompts are backlog too;
    /// excluding them would let simultaneous long prefills all dogpile onto
    /// the same replica).
    pub fn queued_prefill_tokens(&self) -> usize {
        let st = &self.state;
        st.arrivals
            .iter()
            .chain(st.waiting.iter())
            .map(|&r| st.requests[r].remaining_prompt())
            .sum()
    }

    /// Total tokens of work (prompt + output) still to be processed across
    /// every unfinished request this replica owns, including ones that have
    /// not arrived yet. The load signal the least-outstanding router uses.
    pub fn outstanding_tokens(&self) -> usize {
        let st = &self.state;
        st.arrivals
            .iter()
            .chain(st.waiting.iter())
            .chain(st.running.iter())
            .map(|&r| st.requests[r].remaining_tokens())
            .sum::<usize>()
            // Migrated-in requests still in flight are committed work too —
            // without them, simultaneous deliveries would all dogpile onto
            // the same decode replica.
            + st.pending_imports
                .iter()
                .map(|imp| imp.request.remaining_tokens())
                .sum::<usize>()
    }

    /// Fraction of the KV cache currently reserved.
    pub fn kv_utilization(&self) -> f64 {
        self.state.kv.utilization()
    }

    /// The earliest simulated time at which [`ServingEngine::step`] could
    /// make progress, or `None` when nothing is pending (drained, or only
    /// parked handoffs awaiting cluster pickup).
    ///
    /// This is the contract the event-driven [`crate::Cluster`] core builds
    /// on: whenever `next_event_time()` is `None` or `>= t`, `advance_to(t)`
    /// is a state no-op — the clock does not move (idle clocks only advance
    /// when an iteration actually runs) and no queue changes — so skipping
    /// this replica until `t` cannot change any simulation outcome. The
    /// returned time may be conservative (earlier than real progress), which
    /// costs one no-op step, never correctness.
    pub fn next_event_time(&self) -> Option<f64> {
        let st = &self.state;
        if !st.waiting.is_empty() || !st.running.is_empty() {
            // Runnable (or admission-deferred) work: steppable at the clock.
            return Some(st.clock);
        }
        let next_arrival = st.arrivals.front().map(|&id| st.requests[id].spec.arrival);
        let next_import = st.pending_imports.front().map(|imp| imp.available_at);
        match (next_arrival, next_import) {
            (Some(a), Some(m)) => Some(a.min(m)),
            (a, m) => a.or(m),
        }
    }

    /// High-water mark of token-time samples resident in this replica's
    /// request records — the sample-memory proxy (8 bytes each) the
    /// fleet-replay bench reports. In streaming mode finished requests drop
    /// their buffers, so this tracks in-flight work rather than trace
    /// length.
    pub fn peak_token_samples(&self) -> usize {
        self.state.peak_token_samples
    }

    /// Streaming-metrics accumulator, when the config enables it. The
    /// cluster layer merges these for fleet-wide percentiles.
    pub(crate) fn accumulator(&self) -> Option<&ReportAccumulator> {
        self.state.accumulator.as_ref()
    }

    /// The flight recorder, when the config enables tracing. The cluster
    /// layer concatenates these in replica-index order.
    pub(crate) fn trace_recorder(&self) -> Option<&TraceRecorder> {
        self.state.recorder.as_ref()
    }

    /// Collect this engine's flight recording (one replica, no cluster
    /// events), or `None` when the config carries no [`TraceConfig`].
    /// Valid mid-run; the recording is a snapshot.
    pub fn flight_recording(&self) -> Option<FlightRecording> {
        self.state.recorder.as_ref().map(|rec| {
            let mut recording = FlightRecording::new();
            recording.push_replica(rec);
            recording
        })
    }

    /// Prompt tokens of `spec` this replica's prefix index could satisfy
    /// right now, without touching any state. Zero unless the engine runs
    /// the paged policy with prefix caching. The affinity signal
    /// [`crate::RouterPolicy::PrefixAffinity`] routes on.
    pub fn cached_prefix_tokens_for(&self, spec: &RequestSpec) -> usize {
        if !self.config.kv_policy.prefix_caching() {
            return 0;
        }
        self.state
            .kv
            .peek_prefix(spec.content, spec.prompt_tokens.saturating_sub(1))
    }

    /// Fair-queueing selection: give the waiting-queue slot right after any
    /// admitted (reserved, mid-prefill) prefix to the best candidate —
    /// highest [`Priority`] first, then the tenant with the smallest
    /// virtual-token counter, then the smallest tenant id, then queue order.
    /// Every other waiting request keeps its relative order. A no-op without
    /// a [`FairQueueConfig`], and order-preserving (hence bit-for-bit inert)
    /// whenever the FIFO front is already the best candidate — in particular
    /// always for single-tenant, single-priority traces.
    fn fair_reorder(&mut self) {
        if self.config.fair_queue.is_none() {
            return;
        }
        let st = &mut self.state;
        let start = st.waiting.iter().take_while(|&&r| st.reserved[r]).count();
        if st.waiting.len().saturating_sub(start) < 2 {
            return;
        }
        // Activation lift + floor advance: every competing tenant enters the
        // race at no less than the current floor, and the floor ratchets to
        // the smallest competing counter so idle tenants cannot bank credit.
        for pos in start..st.waiting.len() {
            let tenant = st.requests[st.waiting[pos]].spec.tenant;
            let floor = st.fair_floor;
            let v = st.fair_vtime_entry(tenant);
            *v = v.max(floor);
        }
        let min_active = (start..st.waiting.len())
            .map(|pos| {
                let t = st.requests[st.waiting[pos]].spec.tenant;
                *st.fair_vtime_entry(t)
            })
            .fold(f64::INFINITY, f64::min);
        st.fair_floor = st.fair_floor.max(min_active);
        // Pick the best candidate; strict improvement keeps FIFO on ties.
        let mut best = start;
        for pos in start + 1..st.waiting.len() {
            let (bp, bt): (Priority, TenantId) = {
                let r = &st.requests[st.waiting[best]];
                (r.spec.priority, r.spec.tenant)
            };
            let (cp, ct) = {
                let r = &st.requests[st.waiting[pos]];
                (r.spec.priority, r.spec.tenant)
            };
            let bv = *st.fair_vtime_entry(bt);
            let cv = *st.fair_vtime_entry(ct);
            if cp > bp || (cp == bp && (cv < bv || (cv == bv && ct < bt))) {
                best = pos;
            }
        }
        if best != start {
            let rid = st.waiting.remove(best).expect("best is in bounds");
            st.waiting.insert(start, rid);
        }
    }

    /// Priority preemption: when the fair queue's choice sits at the actual
    /// queue front but the block pool blocks its admission, evict running
    /// decodes of strictly lower [`Priority`] (lowest class first, most
    /// recently started among equals — they lose the least recomputation)
    /// through the paged preemption path until the candidate fits or no
    /// eligible victim remains. Each eviction is charged to the candidate's
    /// [`Request::preemptions_inflicted`]. Returns whether anything was
    /// preempted (victims re-queue at the front, so the caller must re-run
    /// the fair selection).
    fn priority_preempt(&mut self) -> bool {
        let preempt_on = self
            .config
            .fair_queue
            .as_ref()
            .is_some_and(|f| f.preempt_priorities)
            && matches!(self.config.kv_policy, KvCachePolicy::Paged { .. });
        if !preempt_on {
            return false;
        }
        let st = &mut self.state;
        // Only act for the schedulable front: a reserved (mid-prefill)
        // request ahead of the candidate owns the prefill slot, and evicting
        // decodes for a request that cannot be consulted yet wastes work.
        let Some(&cand) = st.waiting.front() else {
            return false;
        };
        if st.reserved[cand] {
            return false;
        }
        // Never preempt for a request that cannot fit even in an empty pool
        // (the feasibility rule paged admission defers on).
        let capacity_blocks = st.kv.capacity_tokens() / BLOCK_TOKENS;
        if blocks_for(st.requests[cand].spec.total_tokens()) > capacity_blocks {
            return false;
        }
        let pri = st.requests[cand].spec.priority;
        // Same sizing as paged admission: the prefill target plus the first
        // decode token it mints (prefix-cache hits can only shrink this, so
        // the check may over-evict by at most the cached share).
        let needed = blocks_for(st.requests[cand].target_prefill() + 1) * BLOCK_TOKENS;
        let mut any = false;
        while st.kv.free_tokens() < needed {
            let victim = st
                .running
                .iter()
                .rev()
                .filter(|&&r| st.requests[r].spec.priority < pri)
                .min_by_key(|&&r| st.requests[r].spec.priority)
                .copied();
            let Some(v) = victim else {
                break;
            };
            st.preempt(v);
            st.requests[cand].preemptions_inflicted += 1;
            any = true;
        }
        any
    }

    /// Advance the simulation by exactly one scheduler iteration.
    ///
    /// `now` is the caller's clock; the engine clock first catches up to it
    /// (`clock = max(clock, now)`) — even when nothing turns out to be
    /// runnable, since idle time is real time — making newly due arrivals
    /// visible. The engine then forms one batch, prices it, advances its
    /// clock by the iteration time and applies the effects. When nothing is
    /// runnable the outcome says why ([`IterationOutcome::IdleUntil`] /
    /// [`IterationOutcome::Drained`] / [`IterationOutcome::Blocked`]) and no
    /// further time passes.
    pub fn step(&mut self, now: f64) -> IterationOutcome {
        let st = &mut self.state;
        st.clock = st.clock.max(now);
        // Eviction watermark for the per-iteration KvEvict delta (a plain
        // counter read; the delta is only consulted when tracing is on).
        let evicted_before = st.kv.blocks_evicted();

        // Admit arrivals that have happened by now.
        while let Some(&id) = st.arrivals.front() {
            if st.requests[id].spec.arrival <= st.clock {
                st.waiting.push_back(id);
                st.arrivals.pop_front();
                let t = st.clock;
                let spec = st.requests[id].spec;
                st.trace(t, || TraceEventKind::Enqueue {
                    request: id,
                    tenant: spec.tenant,
                    priority: spec.priority,
                    prompt_tokens: spec.prompt_tokens,
                    output_tokens: spec.output_tokens,
                });
            } else {
                break;
            }
        }

        // Adopt migrated-in KV chains whose transfer has completed: allocate
        // residency and resume the request's decode here. Delivery order is
        // FIFO — a failed allocation holds later imports back too, so
        // admission is deterministic and the longest-waiting chain lands
        // first once capacity frees up.
        while st
            .pending_imports
            .front()
            .is_some_and(|imp| imp.available_at <= st.clock)
        {
            let front = st.pending_imports.front().expect("front checked above");
            let adopted = match self.config.kv_policy {
                KvCachePolicy::Conservative => st
                    .kv
                    .reserve(front.request.spec.total_tokens())
                    .then(Vec::new),
                KvCachePolicy::Paged { .. } => {
                    // Mirror paged admission's +1 rule: room for the chain
                    // plus the next minted token, so a fresh import cannot
                    // immediately preempt itself on first growth.
                    let blocks =
                        blocks_for(front.request.context_len() + 1).max(front.chain.blocks);
                    st.kv.adopt_chain(KvChain {
                        tokens: front.chain.tokens,
                        blocks,
                    })
                }
            };
            let Some(blocks) = adopted else {
                break;
            };
            let mut imp = st.pending_imports.pop_front().expect("front exists");
            let rid = st.requests.len();
            imp.request.id = rid;
            imp.request.migrated_in = true;
            let stall = st.clock
                - imp
                    .request
                    .first_token_time
                    .expect("migrated requests completed prefill");
            imp.request.migration_stall = stall;
            st.migration_stall_time += stall;
            st.migrated_in += 1;
            st.live_token_samples += imp.request.token_times.len();
            let tokens = imp.chain.tokens;
            st.requests.push(imp.request);
            st.reserved.push(true);
            st.tables.push(RequestKv {
                blocks,
                // Adopted chains stay private: block fingerprints are
                // pool-local, so the migrated KV cannot be proven equal to
                // anything in this replica's prefix index.
                index_stalled: true,
                ..RequestKv::default()
            });
            st.running.push(rid);
            let t = st.clock;
            st.trace(t, || TraceEventKind::HandoffImport {
                request: rid,
                tokens,
                stall,
            });
        }

        // Prefix-shared decode (KV dedup) is only meaningful where sharing
        // can be proven: the paged policy's prefix index.
        let dedup_on = self.config.decode_dedup && self.config.kv_policy.prefix_caching();

        // Speculation depth this engine decodes at (0 = autoregressive,
        // which leaves every downstream budget, signature and price
        // bit-for-bit untouched).
        let spec_k = self.config.decode_mode.spec_k();

        // Scheduler hint: co-batch same-prefix decodes so dedup groups
        // actually form under the Sarathi decode cap (taking the first
        // `max_batch_size` of an interleaved running set would split
        // groups). Must precede decode growth so the growth set matches the
        // co-batched decode set.
        if dedup_on && st.running.len() > 1 {
            st.cobatch_shared_prefixes();
        }

        // Under the paged policy, decode growth happens before batch
        // formation: every request that will decode this iteration gets a
        // block for its next token, preempting the newest decodes if the
        // pool is exhausted. The growth set must match the scheduler's
        // decode set exactly: Sarathi caps decodes at `max_batch_size`,
        // while the vLLM policy decodes every running request.
        if matches!(self.config.kv_policy, KvCachePolicy::Paged { .. }) {
            let decode_cap = match self.config.scheduler {
                SchedulerKind::Vllm => usize::MAX,
                SchedulerKind::Sarathi { .. } => self.config.max_batch_size,
            };
            st.grow_decode_blocks(decode_cap, spec_k);
        }

        // Multi-tenant fair queueing: decide which waiting request owns the
        // admission slot this iteration, and — with priority preemption on —
        // evict lower-priority decodes to make room for it. Victims re-queue
        // at the front, so the selection re-runs to restore the winner (it
        // outranks its own victims by construction).
        self.fair_reorder();
        if self.priority_preempt() {
            self.fair_reorder();
        }
        let st = &mut self.state;

        // Plan the iteration. Shedding re-plans without advancing time: a
        // shed frees the prefill slot, so the next waiting request gets its
        // admission consult in the *same* iteration (each shed strictly
        // shrinks the waiting queue, so the loop terminates).
        let plan = loop {
            let plan = {
                let admission = self.config.admission;
                let now_clock = st.clock;
                let capacity_blocks = st.kv.capacity_tokens() / BLOCK_TOKENS;
                let (requests, waiting, running) = (&mut st.requests, &st.waiting, &st.running);
                let (kv, reserved, tables) = (&mut st.kv, &mut st.reserved, &mut st.tables);
                let (cached_ctr, reused_ctr, cow_ctr) = (
                    &mut st.cached_prefix_tokens,
                    &mut st.blocks_reused,
                    &mut st.cow_copies,
                );
                let recorder = &mut st.recorder;
                match self.config.kv_policy {
                    KvCachePolicy::Conservative => plan_batch(
                        self.config.scheduler,
                        requests,
                        waiting,
                        running,
                        &mut |req: &Request| {
                            if reserved[req.id] {
                                return AdmissionDecision::Admit { cached_tokens: 0 };
                            }
                            if admission.should_shed(req, now_clock) {
                                return AdmissionDecision::Shed;
                            }
                            if kv.reserve(req.spec.total_tokens()) {
                                reserved[req.id] = true;
                                if let Some(rec) = recorder.as_mut() {
                                    rec.record(
                                        now_clock,
                                        TraceEventKind::Admit {
                                            request: req.id,
                                            cached_tokens: 0,
                                        },
                                    );
                                }
                                AdmissionDecision::Admit { cached_tokens: 0 }
                            } else {
                                if let Some(rec) = recorder.as_mut() {
                                    rec.record(
                                        now_clock,
                                        TraceEventKind::Defer { request: req.id },
                                    );
                                }
                                AdmissionDecision::Defer
                            }
                        },
                        self.config.max_batch_size,
                        spec_k,
                    ),
                    KvCachePolicy::Paged { prefix_caching } => plan_batch(
                        self.config.scheduler,
                        requests,
                        waiting,
                        running,
                        &mut |req: &Request| {
                            if reserved[req.id] {
                                return AdmissionDecision::Admit { cached_tokens: 0 };
                            }
                            if admission.should_shed(req, now_clock) {
                                return AdmissionDecision::Shed;
                            }
                            // Feasibility: to *finish*, the request must at some
                            // point hold blocks for its whole prompt + output.
                            // Admitting one that never can would decode until
                            // growth exhausts the pool and then preempt/recompute
                            // forever; deferring it surfaces the same Blocked
                            // outcome (with the same total-tokens sizing number)
                            // the conservative policy reports.
                            if blocks_for(req.spec.total_tokens()) > capacity_blocks {
                                if let Some(rec) = recorder.as_mut() {
                                    rec.record(
                                        now_clock,
                                        TraceEventKind::Defer { request: req.id },
                                    );
                                }
                                return AdmissionDecision::Defer;
                            }
                            // Match the prompt (or, after a preemption, the full
                            // recompute target) against the prefix index, capped
                            // one below the target so at least one token is
                            // always computed; then allocate the uncached rest.
                            let target = req.target_prefill();
                            let m = if prefix_caching {
                                kv.acquire_prefix(req.spec.content, target - 1)
                            } else {
                                Default::default()
                            };
                            // Allocate for the prefill target *plus the first
                            // decode token after it*: completing the prefill
                            // mints that token, and without room for its KV a
                            // restored request self-preempts forever — the
                            // preemption frees exactly the blocks re-admission
                            // then re-allocates, while (under the vLLM
                            // scheduler) the restore prefill pauses every other
                            // decode, so nothing ever progresses. Requiring the
                            // extra block up front turns that livelock into a
                            // Defer, letting the running decodes drain and free
                            // real capacity. Still within the feasibility bound:
                            // target + 1 <= prompt + output.
                            let needed = blocks_for(target + 1) - m.blocks.len();
                            let outcome = match kv.alloc_blocks(needed) {
                                Some(fresh) => {
                                    *cached_ctr += m.cached_tokens;
                                    *reused_ctr += m.blocks.len();
                                    *cow_ctr += usize::from(m.cow_source.is_some());
                                    if let Some(rec) = recorder.as_mut() {
                                        rec.record(
                                            now_clock,
                                            TraceEventKind::Admit {
                                                request: req.id,
                                                cached_tokens: m.cached_tokens,
                                            },
                                        );
                                        rec.record(
                                            now_clock,
                                            TraceEventKind::KvAlloc {
                                                request: req.id,
                                                blocks: needed,
                                                reused: m.blocks.len(),
                                                cow: m.cow_source.is_some(),
                                            },
                                        );
                                    }
                                    let table = &mut tables[req.id];
                                    table.shared = m.blocks.len();
                                    table.indexed = m.blocks.len();
                                    table.cursor = m.cursor;
                                    table.blocks = m.blocks;
                                    table.blocks.extend(fresh);
                                    reserved[req.id] = true;
                                    AdmissionDecision::Admit {
                                        cached_tokens: m.cached_tokens,
                                    }
                                }
                                None => {
                                    // Roll back the prefix acquisition; the
                                    // request retries next iteration.
                                    kv.release_blocks(&m.blocks);
                                    if let Some(rec) = recorder.as_mut() {
                                        rec.record(
                                            now_clock,
                                            TraceEventKind::Defer { request: req.id },
                                        );
                                    }
                                    AdmissionDecision::Defer
                                }
                            };
                            // The CoW source was pinned by acquire_prefix so the
                            // allocation above could not evict it mid-admission;
                            // the copy has now happened (or the admission was
                            // rolled back), so drop the pin either way.
                            if let Some(cow) = m.cow_source {
                                kv.release_blocks(&[cow]);
                            }
                            outcome
                        },
                        self.config.max_batch_size,
                        spec_k,
                    ),
                }
            };
            if let Some(rid) = plan.shed {
                st.requests[rid].shed_time = Some(st.clock);
                let t = st.clock;
                st.trace(t, || TraceEventKind::Shed { request: rid });
                if let Some(acc) = st.accumulator.as_mut() {
                    acc.observe_shed(&st.requests[rid]);
                }
                st.waiting.retain(|&r| r != rid);
                // Always re-plan: the freed prefill slot must be offered to
                // the next waiting request in this same iteration (dropping
                // only the shed request from an otherwise-formed plan would
                // waste the whole chunk budget on a decodes-only batch).
                continue;
            }
            break plan;
        };

        if plan.is_empty() {
            // A due-but-unadmitted import with no resident work left to free
            // capacity can never fit: the migration analog of the oversized-
            // request deadlock.
            let import_due = st
                .pending_imports
                .front()
                .is_some_and(|imp| imp.available_at <= st.clock);
            if import_due && st.waiting.is_empty() && st.running.is_empty() {
                return IterationOutcome::Blocked {
                    needed_tokens: st
                        .pending_imports
                        .front()
                        .map(|imp| imp.request.spec.total_tokens())
                        .unwrap_or(0),
                    capacity_tokens: self.kv_capacity,
                };
            }
            let next_arrival = st.arrivals.front().map(|&id| st.requests[id].spec.arrival);
            let next_import = st
                .pending_imports
                .front()
                .map(|imp| imp.available_at)
                .filter(|&t| t > st.clock);
            let wake = match (next_arrival, next_import) {
                (Some(a), Some(m)) => Some(a.min(m)),
                (a, m) => a.or(m),
            };
            if let Some(t) = wake {
                return IterationOutcome::IdleUntil(t);
            }
            if st.waiting.is_empty() && st.running.is_empty() {
                return IterationOutcome::Drained;
            }
            return IterationOutcome::Blocked {
                needed_tokens: st
                    .waiting
                    .front()
                    .map(|&r| st.requests[r].spec.total_tokens())
                    .unwrap_or(0),
                capacity_tokens: self.kv_capacity,
            };
        }

        // Shared-prefix decode dedup: group this iteration's decodes by
        // their shared-block chains and compute the KV traffic the grouped
        // pass saves. With dedup off this stays (0, 0) and every signature,
        // price and trace below is bit-for-bit what a dedup-unaware engine
        // produces.
        let (dedup_groups, dedup_tokens) = if dedup_on && !plan.decodes.is_empty() {
            st.shared_decode_dedup(&plan.decodes)
        } else {
            (0, 0)
        };
        if dedup_tokens > 0 {
            st.decode_kv_tokens_deduped += dedup_tokens;
            let t = st.clock;
            st.trace(t, || TraceEventKind::KvDedup {
                groups: dedup_groups,
                tokens: dedup_tokens,
            });
        }

        // Price the iteration. With the cache on, only novel (quantized)
        // batch shapes reach the cost model; repeats are a map lookup.
        let dt = if self.config.price_cache {
            let sig = BatchSignature::of_plan(&plan, &st.requests, dedup_tokens);
            match st.price_cache.get(&sig) {
                Some(&cached) => {
                    st.cache_hits += 1;
                    cached
                }
                None => {
                    st.cache_misses += 1;
                    let priced = self
                        .cost
                        .iteration_time(&sig.canonical_batch(), self.config.attention);
                    if st.price_cache.len() >= PRICE_CACHE_MAX_ENTRIES {
                        st.price_cache.clear();
                    }
                    st.price_cache.insert(sig, priced);
                    priced
                }
            }
        } else {
            let batch = to_hybrid_batch(&plan, &st.requests, dedup_tokens);
            self.cost.iteration_time(&batch, self.config.attention)
        };
        // Draft proposal time: `k` decode passes of the drafter over this
        // iteration's decode set, added outside the price cache (the
        // drafter's own cost model memoizes internally). Zero — and
        // bit-for-bit absent — in autoregressive mode or with a free
        // drafter, so speculation can never be priced cheaper than the
        // verify work already inside `dt`.
        let draft_dt = draft_proposal_time(
            self.draft_cost.as_ref(),
            spec_k,
            self.config.attention,
            &plan,
            &st.requests,
        );
        let dt = if draft_dt > 0.0 { dt + draft_dt } else { dt };
        let started_at = st.clock;
        st.clock += dt;
        st.iterations += 1;
        st.busy_time += dt;
        if plan.is_hybrid() {
            st.hybrid_iterations += 1;
        }

        // Speculative rounds: draw each decode's acceptance outcome up
        // front. Outcomes are pure functions of (seed, request id, round),
        // so the vector — and everything downstream of it — is identical
        // across thread counts, replica layouts and replays. Empty in
        // autoregressive mode.
        let spec_outcomes: Vec<SpecOutcome> = match &self.config.decode_mode {
            DecodeMode::Autoregressive => Vec::new(),
            DecodeMode::Speculative { k, acceptance, .. } => plan
                .decodes
                .iter()
                .map(|&rid| {
                    let req = &st.requests[rid];
                    let width = req.spec_width(*k);
                    let accepted = acceptance.accepted(rid, req.spec_rounds, width);
                    let minted = AcceptanceModel::minted(accepted, width);
                    SpecOutcome {
                        width,
                        accepted,
                        minted,
                    }
                })
                .collect(),
        };

        // Apply the iteration's effects to request lifecycles and queues.
        let prefill_tt_before = plan
            .prefill
            .map(|(rid, _)| st.requests[rid].token_times.len());
        let finished = apply_plan(
            &plan,
            &spec_outcomes,
            st.clock,
            &mut st.requests,
            &mut st.waiting,
            &mut st.running,
        );
        // Net decode tokens minted this iteration: one per decode
        // autoregressively; the accepted prefix plus correction token per
        // speculative round (optimistic mints beyond that were rolled back).
        let decode_tokens = if spec_outcomes.is_empty() {
            plan.decodes.len()
        } else {
            spec_outcomes.iter().map(|o| o.minted).sum()
        };
        // Resident-sample accounting: every decode minted its net tokens,
        // and a prefill completion may have minted the first one.
        st.live_token_samples += decode_tokens
            + plan.prefill.map_or(0, |(rid, _)| {
                st.requests[rid].token_times.len() - prefill_tt_before.unwrap_or(0)
            });
        if st.live_token_samples > st.peak_token_samples {
            st.peak_token_samples = st.live_token_samples;
        }

        // Speculative bookkeeping: advance round indices, tally draft
        // accept/reject counters, release the KV tail a rollback stranded
        // (those blocks were allocated by this iteration's speculative
        // growth and are never indexed or shared — the refcount-conserving
        // truncation path), and trace each round.
        if !spec_outcomes.is_empty() {
            let paged = matches!(self.config.kv_policy, KvCachePolicy::Paged { .. });
            for (i, &rid) in plan.decodes.iter().enumerate() {
                let o = spec_outcomes[i];
                let rejected = o.width - o.accepted;
                {
                    let req = &mut st.requests[rid];
                    req.spec_rounds += 1;
                    req.draft_accepted += o.accepted;
                    req.draft_rejected += rejected;
                }
                st.spec_rounds += 1;
                st.draft_tokens_accepted += o.accepted;
                st.draft_tokens_rejected += rejected;
                if paged && o.minted < o.width {
                    let keep = blocks_for(st.requests[rid].context_len())
                        .max(st.tables[rid].indexed)
                        .max(st.tables[rid].shared);
                    if st.tables[rid].blocks.len() > keep {
                        let tail = st.tables[rid].blocks.split_off(keep);
                        st.kv.release_blocks(&tail);
                    }
                }
                let t = st.clock;
                st.trace(t, || TraceEventKind::SpecRound {
                    request: rid,
                    width: o.width,
                    accepted: o.accepted,
                    minted: o.minted,
                });
            }
        }

        // KV-cache effects, per policy: register newly computed full blocks
        // in the prefix index, then release finished residencies (a finished
        // request's indexed blocks stay cached until evicted).
        if self.config.kv_policy.prefix_caching() {
            if let Some((rid, _)) = plan.prefill {
                if !finished.contains(&rid) {
                    st.index_computed_blocks(rid);
                }
            }
            for &rid in &plan.decodes {
                if !finished.contains(&rid) {
                    st.index_computed_blocks(rid);
                }
            }
        }
        for &rid in &finished {
            st.release_finished(rid, self.config.kv_policy);
        }

        // Finish events, before streaming metrics drop any request buffers.
        if st.recorder.is_some() {
            for &rid in &finished {
                let req = &st.requests[rid];
                let prompt_tokens = req.spec.prompt_tokens;
                let generated = req.generated;
                let ttft = req.first_token_time.map_or(0.0, |t| t - req.spec.arrival);
                let latency = req.finish_time.map_or(0.0, |t| t - req.spec.arrival);
                let t = st.clock;
                st.trace(t, || TraceEventKind::Finish {
                    request: rid,
                    prompt_tokens,
                    generated,
                    ttft,
                    latency,
                });
            }
        }

        // Streaming metrics: fold each finished request into the accumulator
        // and drop its token-time buffer — nothing downstream needs it.
        // (Prefill-export parkings are not in `finished`; their buffers ride
        // the handoff to the decode replica, which observes the request.)
        if st.accumulator.is_some() {
            for &rid in &finished {
                if let Some(acc) = st.accumulator.as_mut() {
                    acc.observe_finished(&st.requests[rid]);
                }
                let dropped = std::mem::take(&mut st.requests[rid].token_times);
                st.live_token_samples -= dropped.len();
            }
        }

        // Prefill-export mode: a request that just completed its prefill
        // (first token minted, TTFT stamped, blocks indexed above so the
        // local prefix cache keeps serving future sharers) parks for
        // migration pickup instead of decoding here. Its KV residency is
        // serialized into the handoff chain and released *now* — the
        // transfer is overlappable communication, not source HBM — so a
        // backlog of parked exports can never wedge admission. Requests that
        // finished outright at prefill (single-token outputs) have nothing
        // to migrate.
        if self.export_prefills {
            if let Some((rid, _)) = plan.prefill {
                if st.requests[rid].phase() == Phase::Decoding {
                    st.running.retain(|&r| r != rid);
                    let tokens = st.requests[rid].context_len();
                    let chain = match self.config.kv_policy {
                        KvCachePolicy::Conservative => {
                            if st.reserved[rid] {
                                st.kv.release(st.requests[rid].spec.total_tokens());
                                st.reserved[rid] = false;
                            }
                            KvChain {
                                tokens,
                                blocks: blocks_for(tokens),
                            }
                        }
                        KvCachePolicy::Paged { .. } => {
                            let table = std::mem::take(&mut st.tables[rid]);
                            st.reserved[rid] = false;
                            st.kv.export_chain(&table.blocks, tokens)
                        }
                    };
                    let (chain_tokens, chain_blocks) = (chain.tokens, chain.blocks);
                    st.pending_export.push((rid, chain));
                    let t = st.clock;
                    st.trace(t, || TraceEventKind::HandoffExport {
                        request: rid,
                        tokens: chain_tokens,
                        blocks: chain_blocks,
                    });
                }
            }
        }

        // Token accounting via the plan's own budget arithmetic, so the
        // stats and the Sarathi chunk accounting can never drift apart
        // (`decode_tokens`, the net minted count, was computed above).
        let prefill_tokens = plan.scheduled_tokens() - plan.decodes.len() - plan.spec_tokens;
        st.prefill_tokens_scheduled += prefill_tokens;
        // Fair queueing bills scheduled prefill work to the owning tenant's
        // virtual-token counter, weighted (cached-prefix tokens were never
        // scheduled and are free; decode tokens are not contended the same
        // way — the chunk budget is what tenants fight over).
        if let (Some(fq), Some((rid, _))) = (&self.config.fair_queue, plan.prefill) {
            if prefill_tokens > 0 {
                let tenant = st.requests[rid].spec.tenant;
                let weight = fq.weight(tenant);
                *st.fair_vtime_entry(tenant) += prefill_tokens as f64 / weight;
            }
        }
        // Iteration-level trace events: the priced batch, any evictions the
        // iteration's allocations forced, and — when a timeline boundary was
        // crossed — one sample of replica occupancy. All inside one
        // `is_some` branch so tracing off never builds an event.
        if st.recorder.is_some() {
            let evicted = st.kv.blocks_evicted() - evicted_before;
            let clock = st.clock;
            if evicted > 0 {
                st.trace(clock, || TraceEventKind::KvEvict { blocks: evicted });
            }
            let prefill_request = plan.prefill.map(|(rid, _)| rid);
            let chunk = plan.prefill.map_or(0, |(_, c)| c);
            let decode_count = plan.decodes.len();
            let newly_finished = finished.len();
            let hybrid = plan.is_hybrid();
            st.trace(clock, || TraceEventKind::Iteration {
                started_at,
                duration: dt,
                hybrid,
                prefill_request,
                chunk,
                decodes: decode_count,
                prefill_tokens,
                decode_tokens,
                newly_finished,
            });
            let due = st
                .recorder
                .as_mut()
                .is_some_and(|rec| rec.timeline_due(clock));
            if due {
                let running = st.running.len();
                let waiting = st.waiting.len();
                let kv_utilization = st.kv.utilization();
                let mut backlog: std::collections::BTreeMap<TenantId, usize> =
                    std::collections::BTreeMap::new();
                for &r in &st.waiting {
                    *backlog.entry(st.requests[r].spec.tenant).or_insert(0) += 1;
                }
                let tenant_backlog: Vec<(TenantId, usize)> = backlog.into_iter().collect();
                st.trace(clock, || TraceEventKind::TimelineSample {
                    running,
                    waiting,
                    kv_utilization,
                    prefill_tokens,
                    decode_tokens,
                    tenant_backlog,
                });
            }
        }

        IterationOutcome::Ran(IterationStats {
            started_at,
            completed_at: st.clock,
            duration: dt,
            hybrid: plan.is_hybrid(),
            prefill_tokens,
            decode_tokens,
            newly_finished: finished.len(),
        })
    }

    /// Step until this engine can make no progress before simulated time `t`:
    /// it runs every iteration that *starts* before `t` (an iteration started
    /// just before `t` may complete after it, exactly as a real replica would
    /// still be mid-iteration when a new request arrives).
    ///
    /// # Panics
    ///
    /// Panics if a queued request can never fit in the KV cache.
    pub fn advance_to(&mut self, t: f64) {
        let mut now = self.state.clock;
        while now < t {
            match self.step(now) {
                IterationOutcome::Ran(stats) => now = stats.completed_at,
                IterationOutcome::IdleUntil(u) if u < t => now = u,
                IterationOutcome::IdleUntil(_) | IterationOutcome::Drained => break,
                IterationOutcome::Blocked {
                    needed_tokens,
                    capacity_tokens,
                } => panic_blocked(needed_tokens, capacity_tokens),
            }
        }
    }

    /// Step until every submitted request has finished.
    ///
    /// # Panics
    ///
    /// Panics if a queued request can never fit in the KV cache.
    pub fn run_until_drained(&mut self) {
        let mut now = self.state.clock;
        loop {
            match self.step(now) {
                IterationOutcome::Ran(stats) => now = stats.completed_at,
                IterationOutcome::IdleUntil(t) => now = t,
                IterationOutcome::Drained => break,
                IterationOutcome::Blocked {
                    needed_tokens,
                    capacity_tokens,
                } => panic_blocked(needed_tokens, capacity_tokens),
            }
        }
    }

    /// Snapshot the aggregated report for everything served so far. Valid
    /// mid-run (unfinished requests are excluded from the latency stats).
    pub fn report(&self) -> ServingReport {
        let st = &self.state;
        let mut report = match &st.accumulator {
            // Streaming mode: the accumulator already folded every finished
            // and shed request (token buffers are gone), so the report comes
            // from it instead of a batch pass over the records.
            Some(acc) => acc.finalize(
                &self.config.system_label(),
                st.clock,
                st.iterations,
                st.hybrid_iterations,
            ),
            None => ServingReport::from_requests(
                &self.config.system_label(),
                &st.requests,
                st.clock,
                st.iterations,
                st.hybrid_iterations,
            ),
        };
        report.price_cache_hits = st.cache_hits;
        report.price_cache_misses = st.cache_misses;
        report.busy_time = st.busy_time;
        report.prefill_tokens_scheduled = st.prefill_tokens_scheduled;
        report.cached_prefix_tokens = st.cached_prefix_tokens;
        report.blocks_reused = st.blocks_reused;
        report.cow_copies = st.cow_copies;
        report.decode_kv_tokens_deduped = st.decode_kv_tokens_deduped;
        report.spec_rounds = st.spec_rounds;
        report.draft_tokens_accepted = st.draft_tokens_accepted;
        report.draft_tokens_rejected = st.draft_tokens_rejected;
        report.preemptions = st.preemptions;
        report.blocks_evicted = st.kv.blocks_evicted();
        report.migrated_out_requests = st.migrated_out;
        report.migrated_in_requests = st.migrated_in;
        report.migrated_tokens = st.migrated_tokens_out;
        report.migration_stall_time = st.migration_stall_time;
        report
    }

    /// Serve `specs` to completion and return the aggregated report.
    pub fn run(&self, specs: Vec<RequestSpec>) -> ServingReport {
        self.run_detailed(specs).0
    }

    /// Serve `specs` to completion and return both the report and the
    /// per-request records (for custom analyses). Runs on a fresh copy of the
    /// engine state, so `run` can be called repeatedly (and on an engine that
    /// is also being stepped) without interference.
    ///
    /// # Panics
    ///
    /// Panics if a single request can never fit in the KV cache (a
    /// configuration error rather than a load condition).
    pub fn run_detailed(&self, specs: Vec<RequestSpec>) -> (ServingReport, Vec<Request>) {
        let mut engine = ServingEngine {
            config: self.config.clone(),
            cost: self.cost.clone(),
            draft_cost: self.draft_cost.clone(),
            kv_capacity: self.kv_capacity,
            export_prefills: self.export_prefills,
            state: EngineState::new(
                self.kv_capacity,
                self.config.streaming_metrics,
                self.config.tracing.as_ref(),
            ),
        };
        for spec in specs {
            engine.submit(spec);
        }
        engine.run_until_drained();
        let report = engine.report();
        (report, engine.state.requests)
    }

    /// Per-iteration breakdown for a given plan state (used by the Figure 4
    /// harness): builds the hybrid batch the plan describes and prices it.
    pub fn price_batch(&self, batch: &HybridBatch) -> f64 {
        self.cost.iteration_time(batch, self.config.attention)
    }
}

/// The historical deadlock panic, shared by `run_until_drained` and
/// `advance_to` so the message stays identical to the closed-world engine's.
fn panic_blocked(needed_tokens: usize, capacity_tokens: usize) -> ! {
    panic!(
        "serving deadlock: a request needs more KV-cache capacity ({needed_tokens} tokens) than the GPU offers ({capacity_tokens} tokens)"
    );
}

fn to_hybrid_batch(plan: &BatchPlan, requests: &[Request], dedup_tokens: usize) -> HybridBatch {
    let prefill = plan.prefill.map(|(rid, chunk)| {
        let req = &requests[rid];
        PrefillChunk::new(chunk, req.prefilled)
    });
    let decodes = plan
        .decodes
        .iter()
        .map(|&rid| DecodeRequest::new(requests[rid].context_len().max(1)))
        .collect();
    HybridBatch {
        prefill,
        decodes,
        kv_dedup_tokens: dedup_tokens,
        spec_verify_tokens: plan.spec_tokens,
    }
}

/// One decode's speculative-round outcome, drawn before the mint.
#[derive(Debug, Clone, Copy)]
struct SpecOutcome {
    /// Draft tokens proposed and verified this round (`spec_width`).
    width: usize,
    /// Leading drafts verification accepted (`<= width`).
    accepted: usize,
    /// Net tokens the round mints: the accepted prefix plus the target's
    /// correction token on the first rejection (`1..=width`).
    minted: usize,
}

/// Time the draft model spends proposing `spec_k` tokens for each of this
/// iteration's decodes: `spec_k` decode-only passes of the scaled-down
/// drafter over the same contexts as the target batch. Zero without a
/// drafter cost model (autoregressive mode or a free drafter) or without
/// decodes.
fn draft_proposal_time(
    draft_cost: Option<&IterationCostModel>,
    spec_k: usize,
    attention: AttentionStrategy,
    plan: &BatchPlan,
    requests: &[Request],
) -> f64 {
    let Some(cost) = draft_cost else {
        return 0.0;
    };
    if plan.decodes.is_empty() || spec_k == 0 {
        return 0.0;
    }
    let batch = HybridBatch {
        prefill: None,
        decodes: plan
            .decodes
            .iter()
            .map(|&rid| DecodeRequest::new(requests[rid].context_len().max(1)))
            .collect(),
        kv_dedup_tokens: 0,
        spec_verify_tokens: 0,
    };
    spec_k as f64 * cost.iteration_time(&batch, attention)
}

/// Apply one iteration's effects to the request lifecycles and queues,
/// returning the ids that finished (prefill-completions first, then decodes,
/// in plan order — a deterministic release order). KV-cache effects are the
/// caller's job, since they depend on the residency policy.
///
/// `spec` is empty in autoregressive mode (each decode mints exactly one
/// token); in speculative mode it is parallel to `plan.decodes` and each
/// decode optimistically mints its whole drafted width, then rolls the
/// rejected suffix back through [`Request::rollback`] — the same
/// mint-then-truncate lifecycle a real draft-then-verify engine follows.
fn apply_plan(
    plan: &BatchPlan,
    spec: &[SpecOutcome],
    clock: f64,
    requests: &mut [Request],
    waiting: &mut VecDeque<usize>,
    running: &mut Vec<usize>,
) -> Vec<usize> {
    let mut finished = Vec::new();
    if let Some((rid, chunk)) = plan.prefill {
        requests[rid].record_prefill(chunk, clock);
        match requests[rid].phase() {
            Phase::Decoding => {
                // Prompt finished: first token produced (or, after a
                // preemption, recompute complete), move to running.
                waiting.retain(|&r| r != rid);
                running.push(rid);
            }
            Phase::Finished => {
                waiting.retain(|&r| r != rid);
                finished.push(rid);
            }
            _ => {}
        }
    }
    for (i, &rid) in plan.decodes.iter().enumerate() {
        match spec.get(i) {
            None => requests[rid].record_decode_token(clock),
            Some(o) => {
                // `width <= remaining output`, so the optimistic mint never
                // overshoots the request's budget.
                for _ in 0..o.width {
                    requests[rid].record_decode_token(clock);
                }
                requests[rid].rollback(o.width - o.minted);
            }
        }
        if requests[rid].phase() == Phase::Finished {
            running.retain(|&r| r != rid);
            finished.push(rid);
        }
    }
    finished
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{offline_long_context, Workload};

    fn llama3() -> ModelConfig {
        ModelConfig::llama3_8b()
    }

    fn gpu() -> GpuConfig {
        GpuConfig::a100_80gb()
    }

    #[test]
    fn all_requests_complete_and_tokens_are_accounted() {
        let engine = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024));
        let specs = vec![RequestSpec::new(0.0, 3000, 50); 8];
        let (report, requests) = engine.run_detailed(specs);
        assert_eq!(report.completed, 8);
        for r in &requests {
            assert_eq!(r.prefilled, 3000);
            assert_eq!(r.generated, 50);
            assert!(r.finish_time.is_some());
            assert_eq!(r.token_times.len(), 50);
        }
        assert!(report.makespan > 0.0);
        assert!(report.hybrid_iterations > 0);
    }

    #[test]
    fn vllm_has_lower_ttft_but_stalls_decodes() {
        // Online arrivals: new prompts show up while earlier requests are
        // still decoding, which is when vLLM's prefill-prioritizing policy
        // causes generation stalls.
        let requests = Workload::internal().generate(40, 0.8, 17);
        let vllm = ServingEngine::new(ServingConfig::vllm(llama3(), gpu())).run(requests.clone());
        let sarathi =
            ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024)).run(requests);
        // vLLM schedules whole prompts immediately: lower median TTFT.
        assert!(
            vllm.ttft.p50 < sarathi.ttft.p50,
            "vLLM TTFT {} vs Sarathi {}",
            vllm.ttft.p50,
            sarathi.ttft.p50
        );
        // But its prefills pause ongoing decodes: long worst-case decode gaps
        // and many more requests experiencing at least one stall.
        assert!(
            vllm.tbt.max > sarathi.tbt.max,
            "vLLM max TBT {} vs Sarathi {}",
            vllm.tbt.max,
            sarathi.tbt.max
        );
        assert!(
            vllm.stall_fraction_200ms > 0.3,
            "vLLM stall fraction {}",
            vllm.stall_fraction_200ms
        );
        assert!(vllm.stall_fraction_200ms > sarathi.stall_fraction_200ms);
    }

    #[test]
    fn pod_improves_offline_throughput_over_sarathi() {
        let requests = offline_long_context(32, 16 * 1024, 256);
        let sarathi =
            ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024)).run(requests.clone());
        let pod =
            ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024)).run(requests);
        assert_eq!(sarathi.completed, 32);
        assert_eq!(pod.completed, 32);
        let gain = pod.requests_per_minute() / sarathi.requests_per_minute();
        assert!(
            gain > 1.05,
            "POD should improve throughput: {:.1} vs {:.1} req/min",
            pod.requests_per_minute(),
            sarathi.requests_per_minute()
        );
        assert!(gain < 1.6, "throughput gain {gain} is implausibly large");
    }

    #[test]
    fn pod_reduces_latency_under_online_load() {
        let workload = Workload::internal().generate(48, 0.9, 123);
        let sarathi =
            ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1536)).run(workload.clone());
        let pod =
            ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1536)).run(workload);
        assert_eq!(sarathi.completed, 48);
        assert_eq!(pod.completed, 48);
        assert!(pod.ttft.p50 <= sarathi.ttft.p50 * 1.01);
        assert!(pod.request_latency.p50 <= sarathi.request_latency.p50 * 1.01);
    }

    #[test]
    fn kv_capacity_limits_concurrency_but_everything_finishes() {
        let mut config = ServingConfig::sarathi(llama3(), gpu(), 1024);
        // Tiny cache: only ~2 requests of 4K+64 tokens fit at a time.
        config.kv_capacity_tokens = Some(10_000);
        let engine = ServingEngine::new(config);
        let report = engine.run(vec![RequestSpec::new(0.0, 4096, 64); 6]);
        assert_eq!(report.completed, 6);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn oversized_request_panics_with_clear_message() {
        let mut config = ServingConfig::sarathi(llama3(), gpu(), 1024);
        config.kv_capacity_tokens = Some(1_000);
        let engine = ServingEngine::new(config);
        let _ = engine.run(vec![RequestSpec::new(0.0, 4096, 64)]);
    }

    #[test]
    fn online_arrivals_are_respected() {
        let engine = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024));
        let specs = vec![
            RequestSpec::new(0.0, 2048, 16),
            RequestSpec::new(100.0, 2048, 16),
        ];
        let (_, requests) = engine.run_detailed(specs);
        // The second request cannot start before it arrives.
        assert!(requests[1].first_token_time.unwrap() > 100.0);
        assert!(requests[0].finish_time.unwrap() < 100.0);
    }

    #[test]
    fn price_cache_hits_dominate_on_offline_workloads() {
        let mut config = ServingConfig::sarathi_pod(llama3(), gpu(), 1024);
        config.price_cache = true;
        let report = ServingEngine::new(config).run(offline_long_context(16, 2 * 1024, 512));
        assert_eq!(report.completed, 16);
        assert_eq!(
            report.price_cache_hits + report.price_cache_misses,
            report.iterations
        );
        assert!(
            report.price_cache_hit_rate() > 0.8,
            "hit rate {:.3} ({} hits / {} misses)",
            report.price_cache_hit_rate(),
            report.price_cache_hits,
            report.price_cache_misses
        );
    }

    #[test]
    fn cached_and_uncached_serving_agree_within_quantization_tolerance() {
        let workloads = [
            offline_long_context(12, 8 * 1024, 96),
            Workload::internal().generate(24, 0.8, 5),
        ];
        for requests in workloads {
            for make in [
                ServingConfig::sarathi as fn(ModelConfig, GpuConfig, usize) -> ServingConfig,
                ServingConfig::sarathi_pod,
            ] {
                let mut cached = make(llama3(), gpu(), 1024);
                cached.price_cache = true;
                let mut exact = cached.clone();
                exact.price_cache = false;
                let a = ServingEngine::new(cached).run(requests.clone());
                let b = ServingEngine::new(exact).run(requests.clone());
                assert_eq!(a.completed, b.completed);
                assert_eq!(b.price_cache_hits + b.price_cache_misses, 0);
                let rel = (a.makespan - b.makespan).abs() / b.makespan;
                assert!(
                    rel < 0.02,
                    "{}: cached makespan {} vs exact {} ({:.2}% off)",
                    a.system,
                    a.makespan,
                    b.makespan,
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn signatures_collapse_equivalent_plans_only() {
        let specs = [RequestSpec::new(0.0, 4096, 64); 4];
        let mut requests: Vec<Request> = specs
            .iter()
            .enumerate()
            .map(|(i, s)| Request::new(i, *s))
            .collect();
        requests[1].record_prefill(4096, 0.0);
        requests[2].record_prefill(4096, 0.0);
        let plan_a = BatchPlan {
            prefill: Some((0, 512)),
            decodes: vec![1, 2],
            shed: None,
            spec_tokens: 0,
        };
        let plan_b = BatchPlan {
            prefill: Some((0, 512)),
            decodes: vec![2, 1],
            shed: None,
            spec_tokens: 0,
        };
        let plan_c = BatchPlan {
            prefill: Some((0, 256)),
            decodes: vec![1, 2],
            shed: None,
            spec_tokens: 0,
        };
        let sig_a = BatchSignature::of_plan(&plan_a, &requests, 0);
        let sig_b = BatchSignature::of_plan(&plan_b, &requests, 0);
        let sig_c = BatchSignature::of_plan(&plan_c, &requests, 0);
        assert_eq!(sig_a, sig_b, "decode order must not matter");
        assert_ne!(sig_a, sig_c, "chunk length must matter");
        // The canonical batch reproduces the aggregates.
        let batch = sig_a.canonical_batch();
        assert_eq!(batch.decode_batch_size(), 2);
        assert_eq!(batch.prefill.unwrap().chunk_len, 512);
    }

    #[test]
    #[should_panic(expected = "arrival times must not be NaN")]
    fn nan_arrivals_are_rejected_at_submission() {
        // The pre-stepping engine panicked on NaN arrivals in its sort; the
        // step-able engine must too (a NaN arrival never compares as due, so
        // it would otherwise spin forever un-drainable).
        let _ = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024))
            .run(vec![RequestSpec::new(f64::NAN, 128, 8)]);
    }

    #[test]
    fn deadline_shed_drops_only_hopeless_requests() {
        use crate::request::SloSpec;
        // A saturating front: one huge prompt monopolizes the replica while
        // short SLO'd requests queue behind it past their deadlines.
        let config = ServingConfig::sarathi(llama3(), gpu(), 1024)
            .with_admission(AdmissionPolicy::DeadlineShed);
        let slo = SloSpec::new("interactive", 0.5, 0.2);
        let specs = vec![
            RequestSpec::new(0.0, 30_000, 64),
            RequestSpec::new(0.1, 2_000, 32).with_slo(slo),
            RequestSpec::new(0.2, 2_000, 32).with_slo(slo),
            // No SLO: never shed, however late.
            RequestSpec::new(0.3, 2_000, 32),
        ];
        let (report, requests) = ServingEngine::new(config).run_detailed(specs.clone());
        // The big prompt takes far longer than 0.5 s to prefill, so both
        // SLO'd requests blow their deadline in the queue and are shed.
        assert_eq!(report.shed_requests, 2);
        assert_eq!(report.completed, 2);
        assert!(requests[1].shed_time.is_some());
        assert!(requests[2].shed_time.is_some());
        assert!(requests[3].finish_time.is_some(), "SLO-free request served");
        assert_eq!(report.goodput_requests(), 2);

        // Under AdmitAll the same trace serves everything (but late).
        let admit_all = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024));
        let all = admit_all.run(specs);
        assert_eq!(all.shed_requests, 0);
        assert_eq!(all.completed, 4);
        assert_eq!(all.slo_met, 0, "served, but past deadline: not goodput");
        assert_eq!(all.goodput_requests(), 2);
    }

    #[test]
    fn shedding_never_strands_the_engine() {
        use crate::request::SloSpec;
        // Every request hopeless: the engine must shed them all and drain,
        // not deadlock. Deadlines are blown by arrival ordering: a slow
        // first request pushes the clock far past everyone's deadline.
        let config = ServingConfig::sarathi_pod(llama3(), gpu(), 1024)
            .with_admission(AdmissionPolicy::DeadlineShed);
        let slo = SloSpec::new("interactive", 0.2, 0.2);
        let mut specs = vec![RequestSpec::new(0.0, 30_000, 32)];
        specs.extend((0..6).map(|i| RequestSpec::new(0.1 * i as f64, 4_000, 16).with_slo(slo)));
        let report = ServingEngine::new(config).run(specs);
        assert_eq!(report.completed, 1);
        assert_eq!(report.shed_requests, 6);
        assert_eq!(report.slo_classes[0].shed, 6);
    }

    #[test]
    fn admit_all_is_bit_for_bit_inert_on_slo_carrying_traces() {
        use crate::workload::SloMix;
        // Attaching SLOs without a shedding policy must not change the
        // simulation at all — only the grading.
        let plain = Workload::internal().generate(24, 1.5, 11);
        let tagged = SloMix::interactive_batch().apply(plain.clone(), 11);
        let a = ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024)).run(plain);
        let b = ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024)).run(tagged);
        assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
        assert_eq!(a.iterations, b.iterations);
        assert_eq!(a.ttft.p99.to_bits(), b.ttft.p99.to_bits());
        assert_eq!(a.completed, b.completed);
        assert_eq!(b.shed_requests, 0);
        assert!(b.slo_requests > 0, "the tagged run is actually graded");
    }

    #[test]
    fn reclaim_unstarted_takes_queued_but_not_inflight_requests() {
        let mut engine = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024));
        engine.submit(RequestSpec::new(0.0, 8_000, 64)); // will be mid-prefill
        engine.submit(RequestSpec::new(0.0, 4_000, 32)); // queued behind it, unadmitted
        engine.submit(RequestSpec::new(100.0, 2_000, 16)); // future arrival
        engine.step(0.0);
        // Request 0 is mid-prefill (admitted at the queue front, holds KV);
        // request 1 never reached the front, request 2 has not arrived —
        // both are reclaimable, in queue-then-arrival order.
        let reclaimed = engine.reclaim_unstarted();
        assert_eq!(reclaimed.len(), 2);
        assert_eq!(reclaimed[0].prompt_tokens, 4_000);
        assert_eq!(reclaimed[1].arrival, 100.0);
        assert!(engine.requests()[1].reassigned);
        assert!(engine.requests()[2].reassigned);
        assert!(!engine.requests()[0].reassigned);
        // The engine drains what it kept.
        engine.run_until_drained();
        assert!(engine.is_drained());
        let report = engine.report();
        assert_eq!(
            report.completed, 1,
            "reassigned requests are not served here"
        );
    }

    #[test]
    fn system_labels_distinguish_configurations() {
        let a = ServingConfig::vllm(llama3(), gpu()).system_label();
        let b = ServingConfig::sarathi(llama3(), gpu(), 512).system_label();
        let c = ServingConfig::sarathi_pod(llama3(), gpu(), 512).system_label();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert!(c.contains("POD"));
        let f = ServingConfig::sarathi(llama3(), gpu(), 512)
            .with_fair_queue(FairQueueConfig::new())
            .system_label();
        assert!(f.ends_with("+fair"), "fair label: {f}");
    }

    /// The inertness pin at the engine level: with one tenant and one
    /// priority class, fair queueing never reorders the queue and the report
    /// is bit-for-bit FCFS (only the system label differs).
    #[test]
    fn single_tenant_fair_queueing_is_bit_for_bit_fcfs() {
        let specs = Workload::internal().generate(30, 1.0, 77);
        let fcfs =
            ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024)).run(specs.clone());
        let mut fair = ServingEngine::new(
            ServingConfig::sarathi(llama3(), gpu(), 1024).with_fair_queue(FairQueueConfig::new()),
        )
        .run(specs);
        assert!(fair.system.ends_with("+fair"));
        fair.system = fcfs.system.clone();
        assert_eq!(
            fair.to_json().to_string_pretty(),
            fcfs.to_json().to_string_pretty()
        );
    }

    /// Two tenants, one flooding the queue with heavy prefills: weighted
    /// fair queueing must keep the polite tenant's time-to-first-token far
    /// below what FCFS gives it, without losing any requests.
    #[test]
    fn fair_queueing_protects_the_polite_tenant_from_a_flood() {
        // The flood: 12 heavy prompts, all at t=0, tenant 0. The polite
        // tenant trickles small prompts in behind them.
        let mut specs: Vec<RequestSpec> = (0..12)
            .map(|_| RequestSpec::new(0.0, 12_000, 32).with_tenant(TenantId(0)))
            .collect();
        specs.extend(
            (0..6).map(|i| {
                RequestSpec::new(0.1 + i as f64 * 2.0, 1_000, 32).with_tenant(TenantId(1))
            }),
        );
        let polite_ttft = |report: &ServingReport| {
            report
                .tenants
                .iter()
                .find(|t| t.tenant == TenantId(1))
                .expect("tenant 1 served")
                .ttft
                .mean
        };
        let base = ServingConfig::sarathi(llama3(), gpu(), 1024);
        let fcfs = ServingEngine::new(base.clone()).run(specs.clone());
        let fair = ServingEngine::new(base.with_fair_queue(FairQueueConfig::new())).run(specs);
        assert_eq!(fair.completed, fcfs.completed, "no request lost");
        assert!(
            polite_ttft(&fair) < 0.5 * polite_ttft(&fcfs),
            "fair TTFT {} vs FCFS {}",
            polite_ttft(&fair),
            polite_ttft(&fcfs)
        );
    }

    /// Priority preemption: a high-priority arrival evicts a lower-priority
    /// resident decode when the paged pool is full, the eviction is
    /// attributed to the preemptor, and everything still completes.
    #[test]
    fn priority_preemption_evicts_lower_class_decodes() {
        let mut base = ServingConfig::sarathi(llama3(), gpu(), 1024).with_paged_kv(false);
        base.kv_capacity_tokens = Some(20_000);
        // Low-priority requests fill the pool with long decodes first; the
        // high-priority request arrives once they are resident.
        let mut specs: Vec<RequestSpec> = (0..4)
            .map(|_| {
                RequestSpec::new(0.0, 4_000, 2_000)
                    .with_tenant(TenantId(0))
                    .with_priority(Priority::Low)
            })
            .collect();
        specs.push(
            RequestSpec::new(2.0, 4_000, 32)
                .with_tenant(TenantId(1))
                .with_priority(Priority::High),
        );
        let fair = ServingEngine::new(
            base.clone()
                .with_fair_queue(FairQueueConfig::new().with_priority_preemption(true)),
        )
        .run(specs.clone());
        assert_eq!(fair.completed, 5, "preempted work is re-served");
        let high = fair
            .tenants
            .iter()
            .find(|t| t.tenant == TenantId(1))
            .expect("high-priority tenant served");
        assert!(
            high.preemptions_inflicted > 0,
            "the high-priority admission must have evicted someone"
        );
        let low = fair
            .tenants
            .iter()
            .find(|t| t.tenant == TenantId(0))
            .expect("low-priority tenant served");
        assert!(
            low.preemptions_suffered >= high.preemptions_inflicted,
            "victims restart: {} suffered vs {} inflicted",
            low.preemptions_suffered,
            high.preemptions_inflicted
        );
        // Without preemption the high-priority request waits for free KV.
        let fcfs = ServingEngine::new(base).run(specs);
        let high_ttft = |r: &ServingReport| {
            r.tenants
                .iter()
                .find(|t| t.tenant == TenantId(1))
                .expect("tenant 1")
                .ttft
                .mean
        };
        assert!(
            high_ttft(&fair) < high_ttft(&fcfs),
            "preemption must cut the high-priority TTFT: {} vs {}",
            high_ttft(&fair),
            high_ttft(&fcfs)
        );
    }

    /// The "+spec" suffix appears exactly when speculative decoding is
    /// configured, and it sorts last in the label.
    #[test]
    fn speculative_label_suffix() {
        let plain = ServingConfig::sarathi_pod(llama3(), gpu(), 512);
        assert!(!plain.system_label().contains("+spec"));
        let spec = plain.with_speculative(
            4,
            crate::DraftModelConfig::scaled(0.25),
            AcceptanceModel::new(0.8, 7),
        );
        let label = spec.system_label();
        assert!(label.ends_with("+spec"), "spec label: {label}");
    }

    /// The headline win: with a free drafter and perfect acceptance, k=4
    /// speculation mints four tokens per verify round, so the same workload
    /// completes in strictly less virtual time than plain autoregressive
    /// decode — with zero rejected drafts.
    #[test]
    fn perfect_acceptance_free_draft_beats_autoregressive() {
        let specs = Workload::internal().generate(24, 2.0, 11);
        let base = ServingConfig::sarathi_pod(llama3(), gpu(), 1024);
        let ar = ServingEngine::new(base.clone()).run(specs.clone());
        let spec = ServingEngine::new(base.with_speculative(
            4,
            crate::DraftModelConfig::free(),
            AcceptanceModel::new(1.0, 11),
        ))
        .run(specs);
        assert_eq!(spec.completed, ar.completed, "no request lost");
        assert!(spec.spec_rounds > 0, "speculation must actually run");
        assert_eq!(
            spec.draft_tokens_rejected, 0,
            "acceptance 1.0 rejects nothing"
        );
        assert!(spec.draft_tokens_accepted > 0);
        assert!(
            spec.makespan < ar.makespan,
            "spec makespan {} vs AR {}",
            spec.makespan,
            ar.makespan
        );
    }

    /// At acceptance 0.0 every round nets exactly one token (the mandatory
    /// bonus token), so speculation degrades to autoregressive progress while
    /// still paying for its drafts and verify work: one spec round per decode
    /// token, all drafts rejected, and a makespan no better than plain AR.
    #[test]
    fn zero_acceptance_mints_one_token_per_round() {
        // Offline batch with ample KV: no preemption, so every request mints
        // its first token at prefill completion and the remaining
        // `output - 1` in decode rounds.
        let specs: Vec<RequestSpec> = (0..8).map(|_| RequestSpec::new(0.0, 2000, 40)).collect();
        let base = ServingConfig::sarathi_pod(llama3(), gpu(), 1024);
        let ar = ServingEngine::new(base.clone()).run(specs.clone());
        let spec = ServingEngine::new(base.with_speculative(
            4,
            crate::DraftModelConfig::scaled(0.25),
            AcceptanceModel::new(0.0, 13),
        ))
        .run(specs);
        assert_eq!(spec.completed, ar.completed);
        assert_eq!(
            spec.draft_tokens_accepted, 0,
            "acceptance 0.0 accepts nothing"
        );
        assert!(spec.draft_tokens_rejected > 0);
        assert_eq!(
            spec.spec_rounds,
            8 * (40 - 1),
            "one net token per round means one round per decode token"
        );
        assert!(
            spec.makespan >= ar.makespan,
            "verify work is never free: spec {} vs AR {}",
            spec.makespan,
            ar.makespan
        );
    }

    /// Rollback through the paged KV path must conserve blocks: after a
    /// speculative run full of rejected drafts drains, the pool is empty.
    #[test]
    fn speculative_rollback_leaks_no_kv_blocks() {
        let mut config = ServingConfig::sarathi_pod(llama3(), gpu(), 512)
            .with_paged_kv(false)
            .with_speculative(
                6,
                crate::DraftModelConfig::scaled(0.25),
                AcceptanceModel::new(0.4, 29),
            );
        config.kv_capacity_tokens = Some(60_000);
        let mut engine = ServingEngine::new(config);
        for spec in Workload::internal().generate(20, 4.0, 29) {
            engine.submit(spec);
        }
        engine.run_until_drained();
        let report = engine.report();
        assert_eq!(report.completed, 20);
        assert!(report.spec_rounds > 0);
        assert!(
            report.draft_tokens_rejected > 0,
            "rollback must be exercised"
        );
        assert_eq!(
            engine.kv_utilization(),
            0.0,
            "drained pool must hold no leaked blocks"
        );
    }

    /// Every speculative round lands a `spec_round` event in the flight
    /// recorder, and the recorded accepted/rejected tallies reconcile with
    /// the report's counters.
    #[test]
    fn speculative_rounds_are_traced() {
        let config = ServingConfig::sarathi_pod(llama3(), gpu(), 1024)
            .with_speculative(
                4,
                crate::DraftModelConfig::scaled(0.25),
                AcceptanceModel::new(0.7, 5),
            )
            .with_tracing(TraceConfig::new().with_capacity(1 << 20));
        let mut engine = ServingEngine::new(config);
        for spec in Workload::internal().generate(10, 2.0, 5) {
            engine.submit(spec);
        }
        engine.run_until_drained();
        let report = engine.report();
        let recording = engine.flight_recording().expect("tracing configured");
        let (mut rounds, mut accepted, mut rejected) = (0usize, 0usize, 0usize);
        for ev in &recording.replicas[0] {
            if let TraceEventKind::SpecRound {
                width,
                accepted: a,
                minted,
                ..
            } = ev.kind
            {
                rounds += 1;
                accepted += a;
                rejected += width - a;
                assert!(minted >= 1 && minted <= width);
                assert!(a <= width);
            }
        }
        assert_eq!(rounds, report.spec_rounds);
        assert_eq!(accepted, report.draft_tokens_accepted);
        assert_eq!(rejected, report.draft_tokens_rejected);
    }
}
