//! Request-lifecycle tracing, timeline metrics and the flight recorder.
//!
//! The end-of-run [`crate::ServingReport`] says *what* a run did; this module
//! records *why*: every request's journey through
//! enqueue → admit/defer/shed → chunked prefill → decode →
//! preempt/migrate/finish, per-iteration batch composition with the priced
//! cost, KV block traffic, and periodic timeline samples of occupancy and
//! utilization — all stamped on the **virtual clock**, so a trace is a
//! deterministic function of (workload, config, seed) and bit-for-bit
//! identical at every cluster worker count.
//!
//! # Design rules
//!
//! * **Zero-cost when off.** Tracing lives behind
//!   [`ServingConfig::with_tracing`](crate::ServingConfig::with_tracing); the
//!   engine holds an `Option<TraceRecorder>` that is `None` by default, and
//!   every emission site is a branch on that option. Recording is purely
//!   observational — it reads simulation state and never mutates it — so a
//!   traced run's report is bit-identical to an untraced run's (pinned by
//!   the golden tests and the fuzz ride-along).
//! * **Bounded memory: the flight recorder.** Events land in a per-replica
//!   ring buffer of [`TraceConfig::capacity`] entries; once full, the oldest
//!   event is dropped (and counted). A fleet can therefore fly with tracing
//!   always on and pay a constant memory bill, keeping the last *N* events
//!   of history for when something goes wrong — the fuzz harness dumps the
//!   recorder automatically on any invariant violation.
//! * **Constant-memory timelines.** Periodic samples of batch occupancy, KV
//!   utilization and queue depth additionally fold into
//!   [`QuantileSketch`]es ([`TimelineSummary`]), so the *distribution* of a
//!   timeline survives even after the ring has dropped its oldest samples.
//!
//! # Exporters
//!
//! [`FlightRecording`] (collected from an engine or merged across a
//! cluster's replicas in replica-index order) exports two formats through
//! the in-repo [`JsonValue`] writer:
//!
//! * [`FlightRecording::to_chrome_json`] — Chrome `trace_event` JSON:
//!   complete spans per request and per iteration, instants for
//!   shed/preempt/evict, and counter tracks for the timelines. Load the
//!   file in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//! * [`FlightRecording::to_jsonl`] — one compact JSON object per event, for
//!   grep/jq-style analysis and byte-exact determinism tests.

use crate::json::JsonValue;
use crate::request::{Priority, TenantId};
use crate::sketch::QuantileSketch;
use std::collections::{BTreeMap, VecDeque};

/// Default ring-buffer capacity (events per replica).
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default virtual-clock interval between timeline samples, in seconds.
pub const DEFAULT_TIMELINE_INTERVAL: f64 = 1.0;

/// Configuration of the tracing subsystem, attached to a config via
/// [`ServingConfig::with_tracing`](crate::ServingConfig::with_tracing).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Ring-buffer capacity in events, per replica. When the buffer is
    /// full, the oldest event is dropped (flight-recorder semantics; the
    /// drop count is reported). Must be at least 1.
    pub capacity: usize,
    /// Which event categories are recorded. Defaults to everything.
    pub filter: TraceFilter,
    /// Virtual seconds between timeline samples. Samples are taken on the
    /// first iteration completing at or after each interval boundary, so an
    /// idle replica emits none.
    pub timeline_interval: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: DEFAULT_TRACE_CAPACITY,
            filter: TraceFilter::all(),
            timeline_interval: DEFAULT_TIMELINE_INTERVAL,
        }
    }
}

impl TraceConfig {
    /// Everything on, default capacity.
    pub fn new() -> Self {
        TraceConfig::default()
    }

    /// The same configuration with the given ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "the flight recorder needs capacity >= 1");
        self.capacity = capacity;
        self
    }

    /// The same configuration recording only the given categories.
    pub fn with_filter(mut self, filter: TraceFilter) -> Self {
        self.filter = filter;
        self
    }

    /// The same configuration with a timeline sampling interval in virtual
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is not positive and finite.
    pub fn with_timeline_interval(mut self, interval: f64) -> Self {
        assert!(
            interval > 0.0 && interval.is_finite(),
            "timeline intervals must be positive and finite"
        );
        self.timeline_interval = interval;
        self
    }
}

/// Event taxonomy: every [`TraceEventKind`] belongs to exactly one category,
/// and [`TraceFilter`] selects which categories the recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// Request lifecycle: enqueue, admit/defer/shed, preempt, finish.
    Lifecycle,
    /// Engine iterations: one event per priced batch.
    Iteration,
    /// KV block traffic: alloc, free, copy-on-write, eviction.
    Kv,
    /// Disaggregated handoffs: export and import, with migration stall.
    Migration,
    /// Cluster autoscaler actions.
    Autoscaler,
    /// Periodic timeline samples.
    Timeline,
}

/// Which event categories the flight recorder keeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceFilter {
    /// Keep [`TraceCategory::Lifecycle`] events.
    pub lifecycle: bool,
    /// Keep [`TraceCategory::Iteration`] events.
    pub iteration: bool,
    /// Keep [`TraceCategory::Kv`] events.
    pub kv: bool,
    /// Keep [`TraceCategory::Migration`] events.
    pub migration: bool,
    /// Keep [`TraceCategory::Autoscaler`] events.
    pub autoscaler: bool,
    /// Keep [`TraceCategory::Timeline`] events.
    pub timeline: bool,
}

impl Default for TraceFilter {
    fn default() -> Self {
        TraceFilter::all()
    }
}

impl TraceFilter {
    /// Every category on.
    pub fn all() -> Self {
        TraceFilter {
            lifecycle: true,
            iteration: true,
            kv: true,
            migration: true,
            autoscaler: true,
            timeline: true,
        }
    }

    /// Every category off (combine with field updates to opt in).
    pub fn none() -> Self {
        TraceFilter {
            lifecycle: false,
            iteration: false,
            kv: false,
            migration: false,
            autoscaler: false,
            timeline: false,
        }
    }

    /// Only request-lifecycle events — the cheapest useful trace.
    pub fn lifecycle_only() -> Self {
        TraceFilter {
            lifecycle: true,
            ..TraceFilter::none()
        }
    }

    /// Whether `category` passes this filter.
    pub fn keeps(&self, category: TraceCategory) -> bool {
        match category {
            TraceCategory::Lifecycle => self.lifecycle,
            TraceCategory::Iteration => self.iteration,
            TraceCategory::Kv => self.kv,
            TraceCategory::Migration => self.migration,
            TraceCategory::Autoscaler => self.autoscaler,
            TraceCategory::Timeline => self.timeline,
        }
    }
}

/// One recorded event: a virtual-clock stamp plus what happened.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Virtual time of the event in seconds.
    pub t: f64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// What a [`TraceEvent`] records. Request ids are the engine-local ids
/// ([`crate::Request::id`]); in cluster recordings they are scoped by the
/// replica the event came from.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEventKind {
    /// A request became visible to the scheduler (its arrival time was
    /// reached).
    Enqueue {
        /// Engine-local request id.
        request: usize,
        /// Owning tenant.
        tenant: TenantId,
        /// Scheduling priority class.
        priority: Priority,
        /// Prompt length in tokens.
        prompt_tokens: usize,
        /// Output length in tokens.
        output_tokens: usize,
    },
    /// Admission granted: the request acquired KV residency and entered the
    /// prefill slot (also emitted on re-admission after a preemption).
    Admit {
        /// Engine-local request id.
        request: usize,
        /// Prompt tokens satisfied from the prefix cache at this admission.
        cached_tokens: usize,
    },
    /// Admission deferred: the request stays queued (KV pressure or
    /// feasibility).
    Defer {
        /// Engine-local request id.
        request: usize,
    },
    /// The admission policy dropped the request unserved (deadline already
    /// blown).
    Shed {
        /// Engine-local request id.
        request: usize,
    },
    /// A running decode was preempted (swap-out): its blocks were reclaimed
    /// and it re-queued for recompute.
    Preempt {
        /// Engine-local request id.
        request: usize,
    },
    /// The request generated its final token.
    Finish {
        /// Engine-local request id.
        request: usize,
        /// Prompt length in tokens.
        prompt_tokens: usize,
        /// Output tokens generated.
        generated: usize,
        /// Time to first token, in seconds from arrival.
        ttft: f64,
        /// End-to-end latency in seconds from arrival.
        latency: f64,
    },
    /// One scheduler iteration was priced and applied.
    Iteration {
        /// When the iteration started (it completes at the event's `t`).
        started_at: f64,
        /// Priced execution time in seconds.
        duration: f64,
        /// Whether the batch carried both a prefill chunk and decodes.
        hybrid: bool,
        /// The request owning the prefill slot, if any.
        prefill_request: Option<usize>,
        /// Prefill chunk length scheduled this iteration.
        chunk: usize,
        /// Decode requests in the batch.
        decodes: usize,
        /// Prefill tokens actually computed (cached tokens are free).
        prefill_tokens: usize,
        /// Decode tokens generated.
        decode_tokens: usize,
        /// Requests that reached their final token this iteration.
        newly_finished: usize,
    },
    /// KV blocks were allocated to a request at admission.
    KvAlloc {
        /// Engine-local request id.
        request: usize,
        /// Fresh blocks allocated from the pool.
        blocks: usize,
        /// Cached blocks acquired (shared) from the prefix index.
        reused: usize,
        /// Whether a copy-on-write divergence copy was made.
        cow: bool,
    },
    /// A request's KV blocks were released back to the pool.
    KvFree {
        /// Engine-local request id.
        request: usize,
        /// Blocks released.
        blocks: usize,
    },
    /// Cached blocks were evicted (LRU) to satisfy allocations this
    /// iteration.
    KvEvict {
        /// Blocks evicted.
        blocks: usize,
    },
    /// Prefix-shared decode grouping deduped KV traffic this iteration:
    /// `groups` shared-block chains were each streamed once for all their
    /// members, saving `tokens` redundant decode KV-token reads.
    KvDedup {
        /// Shared-prefix groups with at least two co-batched decodes.
        groups: usize,
        /// Decode KV tokens whose re-reads were elided.
        tokens: usize,
    },
    /// A speculative draft-then-verify round completed for one decode:
    /// `width` drafts were proposed and verified, the leading `accepted`
    /// survived, and `minted` tokens (the accepted prefix plus the target's
    /// correction token on the first rejection) advanced the request; the
    /// rejected suffix was rolled back and its KV tail released.
    SpecRound {
        /// Engine-local request id.
        request: usize,
        /// Draft tokens proposed and verified this round.
        width: usize,
        /// Leading drafts verification accepted.
        accepted: usize,
        /// Net tokens the round minted (`1..=width`).
        minted: usize,
    },
    /// A completed prefill was parked for migration to a decode replica,
    /// its KV chain serialized and the local residency released.
    HandoffExport {
        /// Engine-local request id (on the prefill replica).
        request: usize,
        /// Context tokens in the exported chain.
        tokens: usize,
        /// Blocks backing the chain.
        blocks: usize,
    },
    /// A migrated-in KV chain was adopted and its request resumed decoding.
    HandoffImport {
        /// Engine-local request id (on the decode replica).
        request: usize,
        /// Context tokens in the adopted chain.
        tokens: usize,
        /// Seconds between first token on the source replica and decode
        /// admission here (transfer + residency queueing).
        stall: f64,
    },
    /// The autoscaler spawned a replica (cluster-level event).
    ScaleOut {
        /// Fleet size after the action.
        replicas: usize,
    },
    /// The autoscaler began draining a replica (cluster-level event).
    ScaleIn {
        /// Index of the draining replica.
        replica: usize,
    },
    /// Periodic timeline sample of replica state.
    TimelineSample {
        /// Requests in their decode phase.
        running: usize,
        /// Requests waiting for admission.
        waiting: usize,
        /// Fraction of the KV pool in use.
        kv_utilization: f64,
        /// Prefill tokens computed by the sampled iteration.
        prefill_tokens: usize,
        /// Decode tokens generated by the sampled iteration.
        decode_tokens: usize,
        /// Waiting requests per tenant, ascending by tenant id (only
        /// tenants with backlog appear).
        tenant_backlog: Vec<(TenantId, usize)>,
    },
}

impl TraceEventKind {
    /// The category this event belongs to (what [`TraceFilter`] selects on).
    pub fn category(&self) -> TraceCategory {
        match self {
            TraceEventKind::Enqueue { .. }
            | TraceEventKind::Admit { .. }
            | TraceEventKind::Defer { .. }
            | TraceEventKind::Shed { .. }
            | TraceEventKind::Preempt { .. }
            | TraceEventKind::Finish { .. } => TraceCategory::Lifecycle,
            TraceEventKind::Iteration { .. } | TraceEventKind::SpecRound { .. } => {
                TraceCategory::Iteration
            }
            TraceEventKind::KvAlloc { .. }
            | TraceEventKind::KvFree { .. }
            | TraceEventKind::KvEvict { .. }
            | TraceEventKind::KvDedup { .. } => TraceCategory::Kv,
            TraceEventKind::HandoffExport { .. } | TraceEventKind::HandoffImport { .. } => {
                TraceCategory::Migration
            }
            TraceEventKind::ScaleOut { .. } | TraceEventKind::ScaleIn { .. } => {
                TraceCategory::Autoscaler
            }
            TraceEventKind::TimelineSample { .. } => TraceCategory::Timeline,
        }
    }

    /// Stable event-type label (the `"type"` field of the JSON encodings).
    pub fn label(&self) -> &'static str {
        match self {
            TraceEventKind::Enqueue { .. } => "enqueue",
            TraceEventKind::Admit { .. } => "admit",
            TraceEventKind::Defer { .. } => "defer",
            TraceEventKind::Shed { .. } => "shed",
            TraceEventKind::Preempt { .. } => "preempt",
            TraceEventKind::Finish { .. } => "finish",
            TraceEventKind::Iteration { .. } => "iteration",
            TraceEventKind::KvAlloc { .. } => "kv_alloc",
            TraceEventKind::KvFree { .. } => "kv_free",
            TraceEventKind::KvEvict { .. } => "kv_evict",
            TraceEventKind::KvDedup { .. } => "kv_dedup",
            TraceEventKind::SpecRound { .. } => "spec_round",
            TraceEventKind::HandoffExport { .. } => "handoff_export",
            TraceEventKind::HandoffImport { .. } => "handoff_import",
            TraceEventKind::ScaleOut { .. } => "scale_out",
            TraceEventKind::ScaleIn { .. } => "scale_in",
            TraceEventKind::TimelineSample { .. } => "timeline",
        }
    }
}

impl TraceEvent {
    /// Serialize as a flat JSON object (`t`, `type`, then the kind's
    /// fields). This is the JSONL record shape; the Chrome exporter derives
    /// its own shapes from the same data.
    pub fn to_json(&self) -> JsonValue {
        let mut fields: Vec<(&str, JsonValue)> = vec![
            ("t", JsonValue::Num(self.t)),
            ("type", JsonValue::str(self.kind.label())),
        ];
        let num = |n: usize| JsonValue::Num(n as f64);
        match &self.kind {
            TraceEventKind::Enqueue {
                request,
                tenant,
                priority,
                prompt_tokens,
                output_tokens,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("tenant", JsonValue::Num(tenant.0 as f64)));
                fields.push(("priority", JsonValue::str(&format!("{priority:?}"))));
                fields.push(("prompt_tokens", num(*prompt_tokens)));
                fields.push(("output_tokens", num(*output_tokens)));
            }
            TraceEventKind::Admit {
                request,
                cached_tokens,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("cached_tokens", num(*cached_tokens)));
            }
            TraceEventKind::Defer { request }
            | TraceEventKind::Shed { request }
            | TraceEventKind::Preempt { request } => {
                fields.push(("request", num(*request)));
            }
            TraceEventKind::Finish {
                request,
                prompt_tokens,
                generated,
                ttft,
                latency,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("prompt_tokens", num(*prompt_tokens)));
                fields.push(("generated", num(*generated)));
                fields.push(("ttft", JsonValue::Num(*ttft)));
                fields.push(("latency", JsonValue::Num(*latency)));
            }
            TraceEventKind::Iteration {
                started_at,
                duration,
                hybrid,
                prefill_request,
                chunk,
                decodes,
                prefill_tokens,
                decode_tokens,
                newly_finished,
            } => {
                fields.push(("started_at", JsonValue::Num(*started_at)));
                fields.push(("duration", JsonValue::Num(*duration)));
                fields.push(("hybrid", JsonValue::Bool(*hybrid)));
                fields.push((
                    "prefill_request",
                    prefill_request.map_or(JsonValue::Null, num),
                ));
                fields.push(("chunk", num(*chunk)));
                fields.push(("decodes", num(*decodes)));
                fields.push(("prefill_tokens", num(*prefill_tokens)));
                fields.push(("decode_tokens", num(*decode_tokens)));
                fields.push(("newly_finished", num(*newly_finished)));
            }
            TraceEventKind::KvAlloc {
                request,
                blocks,
                reused,
                cow,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("blocks", num(*blocks)));
                fields.push(("reused", num(*reused)));
                fields.push(("cow", JsonValue::Bool(*cow)));
            }
            TraceEventKind::KvFree { request, blocks } => {
                fields.push(("request", num(*request)));
                fields.push(("blocks", num(*blocks)));
            }
            TraceEventKind::KvEvict { blocks } => {
                fields.push(("blocks", num(*blocks)));
            }
            TraceEventKind::KvDedup { groups, tokens } => {
                fields.push(("groups", num(*groups)));
                fields.push(("tokens", num(*tokens)));
            }
            TraceEventKind::SpecRound {
                request,
                width,
                accepted,
                minted,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("width", num(*width)));
                fields.push(("accepted", num(*accepted)));
                fields.push(("minted", num(*minted)));
            }
            TraceEventKind::HandoffExport {
                request,
                tokens,
                blocks,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("tokens", num(*tokens)));
                fields.push(("blocks", num(*blocks)));
            }
            TraceEventKind::HandoffImport {
                request,
                tokens,
                stall,
            } => {
                fields.push(("request", num(*request)));
                fields.push(("tokens", num(*tokens)));
                fields.push(("stall", JsonValue::Num(*stall)));
            }
            TraceEventKind::ScaleOut { replicas } => {
                fields.push(("replicas", num(*replicas)));
            }
            TraceEventKind::ScaleIn { replica } => {
                fields.push(("replica", num(*replica)));
            }
            TraceEventKind::TimelineSample {
                running,
                waiting,
                kv_utilization,
                prefill_tokens,
                decode_tokens,
                tenant_backlog,
            } => {
                fields.push(("running", num(*running)));
                fields.push(("waiting", num(*waiting)));
                fields.push(("kv_utilization", JsonValue::Num(*kv_utilization)));
                fields.push(("prefill_tokens", num(*prefill_tokens)));
                fields.push(("decode_tokens", num(*decode_tokens)));
                fields.push((
                    "tenant_backlog",
                    JsonValue::Arr(
                        tenant_backlog
                            .iter()
                            .map(|&(t, n)| {
                                JsonValue::obj(vec![
                                    ("tenant", JsonValue::Num(t.0 as f64)),
                                    ("waiting", num(n)),
                                ])
                            })
                            .collect(),
                    ),
                ));
            }
        }
        JsonValue::obj(fields)
    }
}

/// Constant-memory summary of the timeline samples: one
/// [`QuantileSketch`] per sampled metric, so the distribution of a whole
/// run's timeline survives the ring buffer dropping its oldest samples.
#[derive(Debug, Clone)]
pub struct TimelineSummary {
    /// Decode-batch occupancy (running requests) per sample.
    pub batch_occupancy: QuantileSketch,
    /// KV pool utilization per sample.
    pub kv_utilization: QuantileSketch,
    /// Admission queue depth (waiting requests) per sample.
    pub queue_depth: QuantileSketch,
    /// Prefill share of the sampled iteration's scheduled tokens
    /// (`prefill / (prefill + decode)`; 0 for decode-only batches).
    pub prefill_share: QuantileSketch,
    /// Samples folded in.
    pub samples: u64,
}

impl Default for TimelineSummary {
    fn default() -> Self {
        TimelineSummary::new()
    }
}

impl TimelineSummary {
    /// An empty summary.
    pub fn new() -> Self {
        TimelineSummary {
            batch_occupancy: QuantileSketch::new(),
            kv_utilization: QuantileSketch::new(),
            queue_depth: QuantileSketch::new(),
            prefill_share: QuantileSketch::new(),
            samples: 0,
        }
    }

    fn observe(
        &mut self,
        running: usize,
        waiting: usize,
        kv_util: f64,
        prefill: usize,
        decode: usize,
    ) {
        self.batch_occupancy.observe(running as f64);
        self.kv_utilization.observe(kv_util);
        self.queue_depth.observe(waiting as f64);
        let scheduled = prefill + decode;
        if scheduled > 0 {
            self.prefill_share
                .observe(prefill as f64 / scheduled as f64);
        }
        self.samples += 1;
    }

    /// Fold another summary into this one (bucket-count addition — order
    /// independent, like the report accumulators).
    pub fn merge(&mut self, other: &TimelineSummary) {
        self.batch_occupancy.merge(&other.batch_occupancy);
        self.kv_utilization.merge(&other.kv_utilization);
        self.queue_depth.merge(&other.queue_depth);
        self.prefill_share.merge(&other.prefill_share);
        self.samples += other.samples;
    }

    /// Serialize as a JSON object of per-metric summaries.
    pub fn to_json(&self) -> JsonValue {
        let stats = |s: &QuantileSketch| {
            if s.count() == 0 {
                return JsonValue::obj(vec![("count", JsonValue::Num(0.0))]);
            }
            JsonValue::obj(vec![
                ("count", JsonValue::Num(s.count() as f64)),
                ("mean", JsonValue::Num(s.mean())),
                ("p50", JsonValue::Num(s.quantile(0.50))),
                ("p99", JsonValue::Num(s.quantile(0.99))),
                ("max", JsonValue::Num(s.max())),
            ])
        };
        JsonValue::obj(vec![
            ("samples", JsonValue::Num(self.samples as f64)),
            ("batch_occupancy", stats(&self.batch_occupancy)),
            ("kv_utilization", stats(&self.kv_utilization)),
            ("queue_depth", stats(&self.queue_depth)),
            ("prefill_share", stats(&self.prefill_share)),
        ])
    }
}

/// Per-replica flight recorder: a bounded ring of [`TraceEvent`]s plus the
/// constant-memory [`TimelineSummary`]. Owned by the engine when tracing is
/// configured; collected through
/// [`ServingEngine::flight_recording`](crate::ServingEngine::flight_recording)
/// or [`Cluster::flight_recording`](crate::Cluster::flight_recording).
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    config: TraceConfig,
    events: VecDeque<TraceEvent>,
    dropped: u64,
    /// Next timeline-sample boundary (virtual seconds).
    next_sample: f64,
    timeline: TimelineSummary,
}

impl TraceRecorder {
    /// A recorder with an empty ring.
    pub fn new(config: TraceConfig) -> Self {
        assert!(
            config.capacity > 0,
            "the flight recorder needs capacity >= 1"
        );
        let next_sample = config.timeline_interval;
        TraceRecorder {
            config,
            events: VecDeque::new(),
            dropped: 0,
            next_sample,
            timeline: TimelineSummary::new(),
        }
    }

    /// The configuration this recorder was built from.
    pub fn config(&self) -> &TraceConfig {
        &self.config
    }

    /// Record one event (dropping the oldest if the ring is full), unless
    /// its category is filtered out.
    pub fn record(&mut self, t: f64, kind: TraceEventKind) {
        if !self.config.filter.keeps(kind.category()) {
            return;
        }
        if let TraceEventKind::TimelineSample {
            running,
            waiting,
            kv_utilization,
            prefill_tokens,
            decode_tokens,
            ..
        } = &kind
        {
            self.timeline.observe(
                *running,
                *waiting,
                *kv_utilization,
                *prefill_tokens,
                *decode_tokens,
            );
        }
        if self.events.len() == self.config.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { t, kind });
    }

    /// Whether a timeline sample is due at virtual time `t`. When it is,
    /// the sample boundary advances past `t` — one sample per crossing, so
    /// a long iteration spanning several intervals yields one sample, not a
    /// burst.
    pub fn timeline_due(&mut self, t: f64) -> bool {
        if !self.config.filter.keeps(TraceCategory::Timeline) || t < self.next_sample {
            return false;
        }
        let interval = self.config.timeline_interval;
        self.next_sample = ((t / interval).floor() + 1.0) * interval;
        true
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> &VecDeque<TraceEvent> {
        &self.events
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The constant-memory timeline summary.
    pub fn timeline(&self) -> &TimelineSummary {
        &self.timeline
    }
}

/// Terminal-event tallies reconstructed from a recording's events — the
/// cross-check that per-request spans agree with the end-of-run report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanOutcomes {
    /// Requests whose `finish` event is in the recording.
    pub finished: usize,
    /// Requests whose `shed` event is in the recording.
    pub shed: usize,
    /// `handoff_export` events (requests migrated out).
    pub migrated_out: usize,
    /// `handoff_import` events (requests migrated in).
    pub migrated_in: usize,
}

/// A collected trace: per-replica event logs in replica-index order, plus
/// cluster-level events (autoscaler actions) and the merged timeline
/// summary. Replica-index-order concatenation is what makes recordings
/// bit-for-bit reproducible at every cluster worker count — each replica's
/// log is deterministic on the virtual clock, and the merge never depends
/// on host-side interleaving.
#[derive(Debug, Clone)]
pub struct FlightRecording {
    /// Each replica's events, oldest first, in replica-index order.
    pub replicas: Vec<Vec<TraceEvent>>,
    /// Cluster-level events (autoscaler actions), oldest first.
    pub cluster: Vec<TraceEvent>,
    /// Events dropped across all rings (flight-recorder overwrites).
    pub dropped: u64,
    /// Timeline summary merged across replicas in replica-index order.
    pub timeline: TimelineSummary,
}

impl FlightRecording {
    /// An empty recording.
    pub fn new() -> Self {
        FlightRecording {
            replicas: Vec::new(),
            cluster: Vec::new(),
            dropped: 0,
            timeline: TimelineSummary::new(),
        }
    }

    /// Append one replica's recorder (cloned) as the next replica index.
    pub fn push_replica(&mut self, recorder: &TraceRecorder) {
        self.replicas
            .push(recorder.events().iter().cloned().collect());
        self.dropped += recorder.dropped();
        self.timeline.merge(recorder.timeline());
    }

    /// Attach the cluster-level recorder (cloned).
    pub fn set_cluster(&mut self, recorder: &TraceRecorder) {
        self.cluster = recorder.events().iter().cloned().collect();
        self.dropped += recorder.dropped();
    }

    /// Total events across every replica and the cluster log.
    pub fn event_count(&self) -> usize {
        self.replicas.iter().map(Vec::len).sum::<usize>() + self.cluster.len()
    }

    /// Tally terminal events per outcome (see [`SpanOutcomes`]).
    pub fn span_outcomes(&self) -> SpanOutcomes {
        let mut out = SpanOutcomes::default();
        for ev in self.replicas.iter().flatten() {
            match ev.kind {
                TraceEventKind::Finish { .. } => out.finished += 1,
                TraceEventKind::Shed { .. } => out.shed += 1,
                TraceEventKind::HandoffExport { .. } => out.migrated_out += 1,
                TraceEventKind::HandoffImport { .. } => out.migrated_in += 1,
                _ => {}
            }
        }
        out
    }

    /// Export as compact JSONL: one JSON object per event, each carrying a
    /// `replica` field (`null` for cluster-level events), replicas in index
    /// order then the cluster log. Deterministic byte-for-byte for a
    /// deterministic simulation — the byte-equality oracle the determinism
    /// tests pin.
    pub fn to_jsonl(&self) -> String {
        let mut out = Vec::new();
        self.write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(out).expect("JSON output is UTF-8")
    }

    /// Stream the JSONL export to a writer without building the whole dump
    /// in memory.
    pub fn write_jsonl<W: std::io::Write>(&self, w: &mut W) -> std::io::Result<()> {
        let line = |w: &mut W, replica: Option<usize>, ev: &TraceEvent| -> std::io::Result<()> {
            let mut obj = vec![(
                "replica".to_string(),
                replica.map_or(JsonValue::Null, |i| JsonValue::Num(i as f64)),
            )];
            if let JsonValue::Obj(fields) = ev.to_json() {
                obj.extend(fields);
            }
            JsonValue::Obj(obj).write_compact(w)?;
            w.write_all(b"\n")
        };
        for (i, events) in self.replicas.iter().enumerate() {
            for ev in events {
                line(w, Some(i), ev)?;
            }
        }
        for ev in &self.cluster {
            line(w, None, ev)?;
        }
        Ok(())
    }

    /// Export as Chrome `trace_event` JSON (the object form, loadable in
    /// `chrome://tracing` and Perfetto):
    ///
    /// * one *process* per replica (pid = replica index; the cluster log is
    ///   the process after the last replica);
    /// * a complete span (`ph: "X"`) per request from its first sighting
    ///   (enqueue or handoff import) to its terminal event (finish, shed or
    ///   handoff export), on `tid = request id + 1`, with the outcome in
    ///   `args`;
    /// * a complete span per iteration on `tid = 0` carrying the batch
    ///   composition and priced cost;
    /// * instants (`ph: "i"`) for shed, preempt and KV evictions;
    /// * counter tracks (`ph: "C"`) from the timeline samples.
    ///
    /// Timestamps are the virtual clock in microseconds (the unit the
    /// format requires).
    pub fn to_chrome_json(&self) -> JsonValue {
        let mut out: Vec<JsonValue> = Vec::new();
        for (pid, events) in self.replicas.iter().enumerate() {
            chrome_process(&mut out, pid, &format!("replica {pid}"), events);
        }
        if !self.cluster.is_empty() {
            chrome_process(&mut out, self.replicas.len(), "cluster", &self.cluster);
        }
        JsonValue::obj(vec![
            ("traceEvents", JsonValue::Arr(out)),
            ("displayTimeUnit", JsonValue::str("ms")),
        ])
    }
}

impl Default for FlightRecording {
    fn default() -> Self {
        FlightRecording::new()
    }
}

/// Microseconds on the virtual clock (what `trace_event` timestamps use).
fn us(t: f64) -> f64 {
    t * 1e6
}

/// The Chrome thread id request spans render on (`tid = 0` is the
/// iteration lane).
fn request_tid(request: usize) -> f64 {
    (request + 1) as f64
}

fn chrome_event(
    name: &str,
    ph: &str,
    pid: usize,
    tid: f64,
    ts: f64,
    extra: Vec<(&str, JsonValue)>,
) -> JsonValue {
    let mut fields = vec![
        ("name", JsonValue::str(name)),
        ("ph", JsonValue::str(ph)),
        ("pid", JsonValue::Num(pid as f64)),
        ("tid", JsonValue::Num(tid)),
        ("ts", JsonValue::Num(ts)),
    ];
    fields.extend(extra);
    JsonValue::obj(fields)
}

/// Emit one replica's (or the cluster log's) events as `trace_event`
/// records under process id `pid`.
fn chrome_process(out: &mut Vec<JsonValue>, pid: usize, name: &str, events: &[TraceEvent]) {
    out.push(chrome_event(
        "process_name",
        "M",
        pid,
        0.0,
        0.0,
        vec![("args", JsonValue::obj(vec![("name", JsonValue::str(name))]))],
    ));
    // Open request spans: first sighting time plus how the span started.
    // BTreeMap (not HashMap) so any leftover iteration order is
    // deterministic; spans close in event order regardless.
    let mut open: BTreeMap<usize, (f64, &'static str)> = BTreeMap::new();
    let close = |out: &mut Vec<JsonValue>,
                 open: &mut BTreeMap<usize, (f64, &'static str)>,
                 request: usize,
                 t: f64,
                 outcome: &str,
                 mut args: Vec<(&str, JsonValue)>| {
        let (start, origin) = open.remove(&request).unwrap_or((t, "unknown"));
        args.push(("outcome", JsonValue::str(outcome)));
        args.push(("origin", JsonValue::str(origin)));
        out.push(chrome_event(
            "request",
            "X",
            pid,
            request_tid(request),
            us(start),
            vec![
                ("dur", JsonValue::Num(us(t) - us(start))),
                ("cat", JsonValue::str("lifecycle")),
                ("args", JsonValue::obj(args)),
            ],
        ));
    };
    for ev in events {
        match &ev.kind {
            TraceEventKind::Enqueue { request, .. } => {
                open.insert(*request, (ev.t, "enqueue"));
            }
            TraceEventKind::HandoffImport { request, stall, .. } => {
                open.insert(*request, (ev.t, "import"));
                out.push(chrome_event(
                    "handoff_import",
                    "i",
                    pid,
                    request_tid(*request),
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("t")),
                        (
                            "args",
                            JsonValue::obj(vec![("stall", JsonValue::Num(*stall))]),
                        ),
                    ],
                ));
            }
            TraceEventKind::Finish {
                request,
                prompt_tokens,
                generated,
                ttft,
                ..
            } => close(
                out,
                &mut open,
                *request,
                ev.t,
                "finished",
                vec![
                    ("prompt_tokens", JsonValue::Num(*prompt_tokens as f64)),
                    ("generated", JsonValue::Num(*generated as f64)),
                    ("ttft", JsonValue::Num(*ttft)),
                ],
            ),
            TraceEventKind::Shed { request } => {
                out.push(chrome_event(
                    "shed",
                    "i",
                    pid,
                    request_tid(*request),
                    us(ev.t),
                    vec![("s", JsonValue::str("t"))],
                ));
                close(out, &mut open, *request, ev.t, "shed", Vec::new());
            }
            TraceEventKind::HandoffExport {
                request, tokens, ..
            } => close(
                out,
                &mut open,
                *request,
                ev.t,
                "migrated_out",
                vec![("tokens", JsonValue::Num(*tokens as f64))],
            ),
            TraceEventKind::Preempt { request } => {
                out.push(chrome_event(
                    "preempt",
                    "i",
                    pid,
                    request_tid(*request),
                    us(ev.t),
                    vec![("s", JsonValue::str("t"))],
                ));
            }
            TraceEventKind::KvDedup { groups, tokens } => {
                out.push(chrome_event(
                    "kv_dedup",
                    "i",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("p")),
                        (
                            "args",
                            JsonValue::obj(vec![
                                ("groups", JsonValue::Num(*groups as f64)),
                                ("tokens", JsonValue::Num(*tokens as f64)),
                            ]),
                        ),
                    ],
                ));
            }
            TraceEventKind::SpecRound {
                request,
                width,
                accepted,
                minted,
            } => {
                out.push(chrome_event(
                    "spec_round",
                    "i",
                    pid,
                    request_tid(*request),
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("t")),
                        (
                            "args",
                            JsonValue::obj(vec![
                                ("width", JsonValue::Num(*width as f64)),
                                ("accepted", JsonValue::Num(*accepted as f64)),
                                ("minted", JsonValue::Num(*minted as f64)),
                            ]),
                        ),
                    ],
                ));
            }
            TraceEventKind::KvEvict { blocks } => {
                out.push(chrome_event(
                    "kv_evict",
                    "i",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("p")),
                        (
                            "args",
                            JsonValue::obj(vec![("blocks", JsonValue::Num(*blocks as f64))]),
                        ),
                    ],
                ));
            }
            TraceEventKind::Iteration {
                started_at,
                duration,
                hybrid,
                chunk,
                decodes,
                prefill_tokens,
                decode_tokens,
                ..
            } => {
                out.push(chrome_event(
                    "iteration",
                    "X",
                    pid,
                    0.0,
                    us(*started_at),
                    vec![
                        ("dur", JsonValue::Num(us(*duration))),
                        ("cat", JsonValue::str("iteration")),
                        (
                            "args",
                            JsonValue::obj(vec![
                                ("hybrid", JsonValue::Bool(*hybrid)),
                                ("chunk", JsonValue::Num(*chunk as f64)),
                                ("decodes", JsonValue::Num(*decodes as f64)),
                                ("prefill_tokens", JsonValue::Num(*prefill_tokens as f64)),
                                ("decode_tokens", JsonValue::Num(*decode_tokens as f64)),
                            ]),
                        ),
                    ],
                ));
            }
            TraceEventKind::TimelineSample {
                running,
                waiting,
                kv_utilization,
                prefill_tokens,
                decode_tokens,
                ..
            } => {
                out.push(chrome_event(
                    "queue",
                    "C",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![(
                        "args",
                        JsonValue::obj(vec![
                            ("running", JsonValue::Num(*running as f64)),
                            ("waiting", JsonValue::Num(*waiting as f64)),
                        ]),
                    )],
                ));
                out.push(chrome_event(
                    "kv_utilization",
                    "C",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![(
                        "args",
                        JsonValue::obj(vec![("utilization", JsonValue::Num(*kv_utilization))]),
                    )],
                ));
                out.push(chrome_event(
                    "scheduled_tokens",
                    "C",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![(
                        "args",
                        JsonValue::obj(vec![
                            ("prefill", JsonValue::Num(*prefill_tokens as f64)),
                            ("decode", JsonValue::Num(*decode_tokens as f64)),
                        ]),
                    )],
                ));
            }
            TraceEventKind::ScaleOut { replicas } => {
                out.push(chrome_event(
                    "scale_out",
                    "i",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("g")),
                        (
                            "args",
                            JsonValue::obj(vec![("replicas", JsonValue::Num(*replicas as f64))]),
                        ),
                    ],
                ));
            }
            TraceEventKind::ScaleIn { replica } => {
                out.push(chrome_event(
                    "scale_in",
                    "i",
                    pid,
                    0.0,
                    us(ev.t),
                    vec![
                        ("s", JsonValue::str("g")),
                        (
                            "args",
                            JsonValue::obj(vec![("replica", JsonValue::Num(*replica as f64))]),
                        ),
                    ],
                ));
            }
            // Admissions, defers, allocs and frees carry no span of their
            // own; the JSONL export keeps their full detail.
            TraceEventKind::Admit { .. }
            | TraceEventKind::Defer { .. }
            | TraceEventKind::KvAlloc { .. }
            | TraceEventKind::KvFree { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enqueue(request: usize) -> TraceEventKind {
        TraceEventKind::Enqueue {
            request,
            tenant: TenantId::DEFAULT,
            priority: Priority::Normal,
            prompt_tokens: 128,
            output_tokens: 16,
        }
    }

    #[test]
    fn ring_buffer_drops_oldest_and_counts() {
        let mut rec = TraceRecorder::new(TraceConfig::new().with_capacity(3));
        for i in 0..5 {
            rec.record(i as f64, enqueue(i));
        }
        assert_eq!(rec.events().len(), 3);
        assert_eq!(rec.dropped(), 2);
        let first = rec.events().front().expect("ring is non-empty");
        assert_eq!(first.t, 2.0, "the two oldest events were dropped");
    }

    #[test]
    fn filter_drops_whole_categories() {
        let mut rec =
            TraceRecorder::new(TraceConfig::new().with_filter(TraceFilter::lifecycle_only()));
        rec.record(0.0, enqueue(0));
        rec.record(1.0, TraceEventKind::KvEvict { blocks: 4 });
        assert_eq!(rec.events().len(), 1);
        assert_eq!(rec.events()[0].kind.label(), "enqueue");
        // Filtered events are not "dropped" — the ring never saw them.
        assert_eq!(rec.dropped(), 0);
    }

    #[test]
    fn timeline_sampling_is_one_per_interval_crossing() {
        let mut rec = TraceRecorder::new(TraceConfig::new().with_timeline_interval(1.0));
        assert!(!rec.timeline_due(0.5));
        assert!(rec.timeline_due(1.2));
        // Same interval: not due again.
        assert!(!rec.timeline_due(1.9));
        // A long jump over many boundaries yields one sample, then re-arms.
        assert!(rec.timeline_due(7.3));
        assert!(!rec.timeline_due(7.9));
        assert!(rec.timeline_due(8.0));
    }

    #[test]
    fn timeline_summary_folds_samples_into_sketches() {
        let mut rec = TraceRecorder::new(TraceConfig::new());
        for i in 0..10 {
            rec.record(
                i as f64,
                TraceEventKind::TimelineSample {
                    running: i,
                    waiting: 2 * i,
                    kv_utilization: i as f64 / 10.0,
                    prefill_tokens: 100,
                    decode_tokens: 100,
                    tenant_backlog: Vec::new(),
                },
            );
        }
        let tl = rec.timeline();
        assert_eq!(tl.samples, 10);
        assert_eq!(tl.batch_occupancy.count(), 10);
        assert!((tl.prefill_share.mean() - 0.5).abs() < 1e-9);
        let json = tl.to_json();
        assert!(json.get_path("queue_depth.p99").is_some());
    }

    #[test]
    fn jsonl_is_one_parseable_object_per_event() {
        let mut rec = TraceRecorder::new(TraceConfig::new());
        rec.record(0.0, enqueue(0));
        rec.record(
            0.5,
            TraceEventKind::Finish {
                request: 0,
                prompt_tokens: 128,
                generated: 16,
                ttft: 0.2,
                latency: 0.5,
            },
        );
        let mut recording = FlightRecording::new();
        recording.push_replica(&rec);
        let jsonl = recording.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in &lines {
            let v = JsonValue::parse(line).expect("each line is a JSON object");
            assert!(v.get("replica").is_some());
            assert!(v.get("type").is_some());
        }
        assert_eq!(
            JsonValue::parse(lines[1]).unwrap().get("type"),
            Some(&JsonValue::str("finish"))
        );
    }

    #[test]
    fn chrome_export_builds_spans_from_terminal_events() {
        let mut rec = TraceRecorder::new(TraceConfig::new());
        rec.record(1.0, enqueue(7));
        rec.record(
            3.0,
            TraceEventKind::Finish {
                request: 7,
                prompt_tokens: 128,
                generated: 16,
                ttft: 0.5,
                latency: 2.0,
            },
        );
        rec.record(4.0, TraceEventKind::Shed { request: 8 });
        let mut recording = FlightRecording::new();
        recording.push_replica(&rec);
        let doc = recording.to_chrome_json();
        let events = match doc.get("traceEvents") {
            Some(JsonValue::Arr(items)) => items,
            other => panic!("traceEvents should be an array, got {other:?}"),
        };
        let spans: Vec<&JsonValue> = events
            .iter()
            .filter(|e| e.get("ph") == Some(&JsonValue::str("X")))
            .collect();
        assert_eq!(spans.len(), 2, "one finished span, one shed span");
        let finished = spans
            .iter()
            .find(|s| s.get_path("args.outcome") == Some(&JsonValue::str("finished")))
            .expect("finished span present");
        assert_eq!(finished.get("ts"), Some(&JsonValue::Num(1e6)));
        assert_eq!(finished.get("dur"), Some(&JsonValue::Num(2e6)));
        let outcomes = recording.span_outcomes();
        assert_eq!(outcomes.finished, 1);
        assert_eq!(outcomes.shed, 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = TraceConfig::new().with_capacity(0);
    }
}
