//! A small deterministic pseudo-random number generator.
//!
//! The container this reproduction builds in has no access to crates.io, so
//! the workload generators cannot depend on the `rand` crate. SplitMix64 is
//! a well-studied 64-bit mixer (Steele et al., "Fast splittable pseudorandom
//! number generators") with more than enough statistical quality for sampling
//! synthetic request traces; it is tiny, allocation-free and seedable, which
//! is all the serving experiments need.

/// The SplitMix64 finalizer: a strong, stateless 64-bit mixer. Shared by the
/// generator below and by the token-fingerprint hashing in
/// [`crate::PromptContent`], so the magic constants exist exactly once.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 generator. Identical seeds yield identical streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        mix64(self.state)
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform sample in `[0, n)`.
    pub fn next_usize(&mut self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = SplitMix64::seed_from_u64(7);
        let mut b = SplitMix64::seed_from_u64(7);
        let mut c = SplitMix64::seed_from_u64(8);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_samples_are_uniform_enough() {
        let mut rng = SplitMix64::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut rng = SplitMix64::seed_from_u64(42);
        assert!((0..n).all(|_| {
            let x = rng.next_f64();
            (0.0..1.0).contains(&x)
        }));
    }

    #[test]
    fn usize_samples_stay_in_range() {
        let mut rng = SplitMix64::seed_from_u64(1);
        assert_eq!(rng.next_usize(0), 0);
        assert!((0..1000).all(|_| rng.next_usize(17) < 17));
    }
}
