//! Request lifecycle tracking for the serving simulator.

use crate::rng::mix64;

/// Identity of a request's token stream, used by the prefix-sharing paged KV
/// cache ([`crate::BlockPool`]) to decide which blocks two requests may
/// share.
///
/// The simulator never materializes real token ids; instead a request's
/// stream is *defined* by deterministic 64-bit fingerprints. Two requests
/// produce the same fingerprint at the same position exactly when their
/// workloads declare the tokens identical: a shared system prompt (same
/// `prefix_tag` over the first `prefix_tokens` positions) or a multi-turn
/// conversation (same `lineage_tag` for everything after — including the
/// decode region, so a follow-up turn whose prompt embeds the previous
/// response matches the blocks that response left in the cache).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PromptContent {
    /// No token identity: the request can never share KV-cache blocks. The
    /// default, and the only content the conservative KV policy ever sees.
    Opaque,
    /// A deterministic synthetic token stream.
    Tokens {
        /// Tag of the shared prefix region (e.g. a system-prompt group).
        prefix_tag: u64,
        /// Length of the shared prefix region in tokens.
        prefix_tokens: usize,
        /// Tag of everything after the shared prefix: the conversation
        /// lineage. Positions beyond `prefix_tokens` — later prompt tokens
        /// *and* generated tokens — fingerprint under this tag, so turns of
        /// one conversation form one continuous stream.
        lineage_tag: u64,
    },
}

impl PromptContent {
    /// Content for a stream that shares nothing: a unique lineage and no
    /// prefix region.
    pub fn unique(lineage_tag: u64) -> Self {
        PromptContent::Tokens {
            prefix_tag: 0,
            prefix_tokens: 0,
            lineage_tag,
        }
    }

    /// Content with a shared prefix region (system prompt) followed by a
    /// conversation-private stream.
    pub fn shared(prefix_tag: u64, prefix_tokens: usize, lineage_tag: u64) -> Self {
        PromptContent::Tokens {
            prefix_tag,
            prefix_tokens,
            lineage_tag,
        }
    }

    /// Whether this content participates in prefix sharing at all.
    pub fn is_shareable(&self) -> bool {
        matches!(self, PromptContent::Tokens { .. })
    }

    /// Fingerprint of the token at stream position `position`, or `None` for
    /// [`PromptContent::Opaque`].
    pub fn token_at(&self, position: usize) -> Option<u64> {
        match *self {
            PromptContent::Opaque => None,
            PromptContent::Tokens {
                prefix_tag,
                prefix_tokens,
                lineage_tag,
            } => {
                let tag = if position < prefix_tokens {
                    prefix_tag
                } else {
                    lineage_tag
                };
                Some(mix64(
                    tag ^ (position as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                ))
            }
        }
    }
}

/// A request's latency service-level objective: the deadlines the serving
/// system is *graded* against, in the goodput framing of Sarathi-Serve and
/// §5 of the POD-Attention paper. A request **meets its SLO** when its TTFT
/// is within `ttft_deadline` of arrival *and* no decode gap exceeds
/// `tbt_target` (the stall-free TBT criterion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Class label for per-class attainment breakdowns (e.g. `"interactive"`,
    /// `"batch"`). Reports group violations by this name.
    pub class: &'static str,
    /// Maximum acceptable time-to-first-token, in seconds from arrival.
    pub ttft_deadline: f64,
    /// Maximum acceptable gap between consecutive output tokens, in seconds.
    pub tbt_target: f64,
}

impl SloSpec {
    /// An SLO with the given class label and targets.
    ///
    /// # Panics
    ///
    /// Panics if either target is not positive and finite.
    pub fn new(class: &'static str, ttft_deadline: f64, tbt_target: f64) -> Self {
        assert!(
            ttft_deadline > 0.0 && ttft_deadline.is_finite(),
            "ttft_deadline must be positive and finite"
        );
        assert!(
            tbt_target > 0.0 && tbt_target.is_finite(),
            "tbt_target must be positive and finite"
        );
        SloSpec {
            class,
            ttft_deadline,
            tbt_target,
        }
    }
}

/// Identity of the tenant a request belongs to, for fair queueing and
/// per-tenant reporting.
///
/// Tenant 0 is the **default tenant**: workloads that never mention tenancy
/// put every request there, and a trace where every request lands on one
/// tenant behaves bit-for-bit like a tenant-free trace (fair queueing over a
/// single tenant degenerates to FCFS). The id doubles as the deterministic
/// tie-break in the fair queue, so reports order tenants by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The default tenant every untagged request belongs to.
    pub const DEFAULT: TenantId = TenantId(0);
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tenant-{}", self.0)
    }
}

/// Scheduling priority class of a request. Ordered: a request of a strictly
/// higher class may **preempt** a running decode of a lower class through the
/// paged preemption path when the fair-queueing layer is enabled and KV
/// memory is the bottleneck ([`crate::FairQueueConfig::preempt_priorities`]).
///
/// Priority is orthogonal to [`SloSpec`]: the SLO says how a request is
/// *graded*, the priority says who yields KV residency under contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Throughput traffic; first to be preempted.
    Low,
    /// The default class for untagged requests.
    #[default]
    Normal,
    /// Latency-critical traffic; may preempt `Low`/`Normal` decodes.
    High,
}

impl Priority {
    /// Class label used in reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            Priority::Low => "low",
            Priority::Normal => "normal",
            Priority::High => "high",
        }
    }
}

/// Specification of a request as generated by a workload: when it arrives and
/// how many prompt/output tokens it has.
///
/// Construct one with [`RequestSpec::builder`]; the positional
/// [`RequestSpec::new`] plus `with_*` chain remains as a shim for older call
/// sites and is bit-for-bit equivalent.
///
/// # `Copy` audit
///
/// `RequestSpec` stays `Copy` on purpose: every field is a plain scalar or a
/// `Copy` enum ([`PromptContent`], [`SloSpec`], [`TenantId`], [`Priority`]),
/// and hot paths rely on implicit copies — the engine's
/// `reclaim_unstarted` returns specs by value out of live request records,
/// and traces are built with `vec![spec; n]` repetition. A copy is always a
/// *full* copy with no shared state; cloning a spec can never alias another
/// request. (The execution-side [`Request`] is deliberately `Clone` but not
/// `Copy`: its `token_times` buffer is heap-allocated, and cloning one is an
/// explicit, intentional act — e.g. serializing a migration handoff.)
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestSpec {
    /// Arrival time in seconds (0 for offline workloads).
    pub arrival: f64,
    /// Number of prompt (prefill) tokens.
    pub prompt_tokens: usize,
    /// Number of output (decode) tokens to generate.
    pub output_tokens: usize,
    /// Token-stream identity for prefix sharing (defaults to
    /// [`PromptContent::Opaque`]: no sharing).
    pub content: PromptContent,
    /// Latency objective this request is graded against (defaults to `None`:
    /// the request always counts toward goodput once it completes).
    pub slo: Option<SloSpec>,
    /// Tenant this request bills its prefill work to (defaults to
    /// [`TenantId::DEFAULT`]).
    pub tenant: TenantId,
    /// Scheduling priority class (defaults to [`Priority::Normal`]).
    pub priority: Priority,
}

impl RequestSpec {
    /// Start building a request specification — the canonical construction
    /// path. Optional attributes chain fluently:
    ///
    /// ```
    /// use llm_serving::{Priority, RequestSpec, SloSpec, TenantId};
    ///
    /// let spec = RequestSpec::builder(0.5, 4096, 128)
    ///     .slo(SloSpec::new("interactive", 2.0, 0.2))
    ///     .tenant(TenantId(3))
    ///     .priority(Priority::High)
    ///     .build();
    /// assert_eq!(spec.tenant, TenantId(3));
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if the prompt or output length is zero.
    pub fn builder(arrival: f64, prompt_tokens: usize, output_tokens: usize) -> RequestSpecBuilder {
        RequestSpecBuilder {
            spec: RequestSpec::new(arrival, prompt_tokens, output_tokens),
        }
    }

    /// A new request specification with every optional attribute at its
    /// default.
    ///
    /// Kept as a shim for existing call sites; prefer
    /// [`RequestSpec::builder`], which reaches the same defaults and the
    /// newer attributes (tenant, priority) through one fluent surface.
    ///
    /// # Panics
    ///
    /// Panics if the prompt or output length is zero.
    pub fn new(arrival: f64, prompt_tokens: usize, output_tokens: usize) -> Self {
        assert!(
            prompt_tokens > 0,
            "a request needs at least one prompt token"
        );
        assert!(
            output_tokens > 0,
            "a request needs at least one output token"
        );
        RequestSpec {
            arrival,
            prompt_tokens,
            output_tokens,
            content: PromptContent::Opaque,
            slo: None,
            tenant: TenantId::DEFAULT,
            priority: Priority::Normal,
        }
    }

    /// The same specification with an explicit token-stream identity.
    ///
    /// Shim for older call sites; prefer
    /// [`RequestSpecBuilder::content`].
    pub fn with_content(mut self, content: PromptContent) -> Self {
        self.content = content;
        self
    }

    /// The same specification with a latency SLO attached.
    ///
    /// Shim for older call sites; prefer [`RequestSpecBuilder::slo`].
    pub fn with_slo(mut self, slo: SloSpec) -> Self {
        self.slo = Some(slo);
        self
    }

    /// The same specification billed to `tenant`.
    ///
    /// Shim-style convenience mirroring [`RequestSpec::with_slo`]; prefer
    /// [`RequestSpecBuilder::tenant`] for new code.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// The same specification at `priority`.
    ///
    /// Shim-style convenience mirroring [`RequestSpec::with_slo`]; prefer
    /// [`RequestSpecBuilder::priority`] for new code.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Prompt-to-decode token ratio (the paper's P:D ratio).
    pub fn pd_ratio(&self) -> f64 {
        self.prompt_tokens as f64 / self.output_tokens as f64
    }

    /// Total tokens (prompt + output) this request will occupy in the KV
    /// cache when it finishes.
    pub fn total_tokens(&self) -> usize {
        self.prompt_tokens + self.output_tokens
    }
}

/// Fluent builder returned by [`RequestSpec::builder`]. Every setter is
/// chainable; [`RequestSpecBuilder::build`] yields the finished spec.
#[derive(Debug, Clone)]
pub struct RequestSpecBuilder {
    spec: RequestSpec,
}

impl RequestSpecBuilder {
    /// Token-stream identity for prefix sharing.
    pub fn content(mut self, content: PromptContent) -> Self {
        self.spec.content = content;
        self
    }

    /// Latency SLO the request is graded against.
    pub fn slo(mut self, slo: SloSpec) -> Self {
        self.spec.slo = Some(slo);
        self
    }

    /// Tenant the request bills its prefill work to.
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.spec.tenant = tenant;
        self
    }

    /// Scheduling priority class.
    pub fn priority(mut self, priority: Priority) -> Self {
        self.spec.priority = priority;
        self
    }

    /// Finish building the specification.
    pub fn build(self) -> RequestSpec {
        self.spec
    }
}

/// Execution phase of a request inside the serving engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting in the queue; no tokens processed yet.
    Queued,
    /// Some prompt tokens processed (chunked prefill in progress).
    Prefilling,
    /// Prompt complete; generating output tokens.
    Decoding,
    /// All output tokens generated.
    Finished,
}

/// A request being served, with its progress and latency bookkeeping.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Stable identifier (index in the workload).
    pub id: usize,
    /// The originating specification.
    pub spec: RequestSpec,
    /// Prompt tokens already prefilled.
    pub prefilled: usize,
    /// Output tokens already generated.
    pub generated: usize,
    /// Time the first output token became available (TTFT reference).
    pub first_token_time: Option<f64>,
    /// Completion times of every generated token (including the first).
    pub token_times: Vec<f64>,
    /// Time all output tokens were generated.
    pub finish_time: Option<f64>,
    /// Prompt tokens whose KV was taken from the prefix cache instead of
    /// being prefilled (cumulative across restarts).
    pub cached_prompt_tokens: usize,
    /// Generated tokens whose KV must be recomputed before decoding resumes,
    /// set when the request is preempted (its blocks were reclaimed).
    pub recompute_tokens: usize,
    /// How many times this request was preempted and restarted — the
    /// preemptions this request **suffered**, whatever the trigger (KV
    /// memory pressure or a higher-priority admission).
    pub restarts: usize,
    /// How many preemptions this request **inflicted** on lower-priority
    /// decodes: incremented on the *admitted* request when its priority
    /// class evicted a victim to make room. Memory-pressure preemptions
    /// (decode growth against a full block pool) have no single inflictor
    /// and are attributed to nobody.
    pub preemptions_inflicted: usize,
    /// Time the admission policy shed this request (dropped it unserved
    /// because its TTFT deadline was already blown), if it did. A shed
    /// request never finishes and is excluded from latency statistics.
    pub shed_time: Option<f64>,
    /// Whether the cluster autoscaler pulled this not-yet-started request
    /// out of a draining replica and re-routed it elsewhere. The record
    /// stays on the old replica for id stability but is excluded from every
    /// metric; the re-routed copy (on another replica) carries the latency
    /// accounting.
    pub reassigned: bool,
    /// Time the first prefill chunk of the current residency was computed —
    /// the start of the window a layer-wise-streaming KV migration can
    /// overlap with (ISO-style compute/communication overlap). Reset on
    /// preemption along with the prefill progress.
    pub prefill_start_time: Option<f64>,
    /// Whether this request finished its prefill here and was handed off to
    /// a decode replica (disaggregated serving). Like `reassigned`, the
    /// record stays on the prefill replica for id stability but is excluded
    /// from every metric; the migrated copy carries the latency accounting
    /// (including the TTFT already stamped here).
    pub migrated_out: bool,
    /// Whether this request arrived via KV migration from a prefill replica
    /// (its prompt was computed elsewhere; only decode happens here).
    pub migrated_in: bool,
    /// Seconds between first token (prefill completion on the source
    /// replica) and decode admission on this replica, for migrated-in
    /// requests: the KV transfer plus any queueing for residency. Shows up
    /// in the TBT samples as the gap before the second token.
    pub migration_stall: f64,
    /// Speculative draft-then-verify rounds this request has executed.
    /// Doubles as the deterministic round index for
    /// [`crate::AcceptanceModel`] draws: the draw for round `n` is a pure
    /// function of `(seed, id, n)`, so replays and different worker counts
    /// see identical acceptance outcomes.
    pub spec_rounds: usize,
    /// Draft tokens this request's verify steps accepted (cumulative).
    pub draft_accepted: usize,
    /// Draft tokens this request's verify steps rejected and rolled back
    /// (cumulative).
    pub draft_rejected: usize,
}

impl Request {
    /// Wrap a specification for execution.
    pub fn new(id: usize, spec: RequestSpec) -> Self {
        Request {
            id,
            spec,
            prefilled: 0,
            generated: 0,
            first_token_time: None,
            token_times: Vec::new(),
            finish_time: None,
            cached_prompt_tokens: 0,
            recompute_tokens: 0,
            restarts: 0,
            preemptions_inflicted: 0,
            shed_time: None,
            reassigned: false,
            prefill_start_time: None,
            migrated_out: false,
            migrated_in: false,
            migration_stall: 0.0,
            spec_rounds: 0,
            draft_accepted: 0,
            draft_rejected: 0,
        }
    }

    /// Tokens that must be prefilled before (more) decoding can happen: the
    /// prompt, plus — after a preemption — the KV of already-generated tokens
    /// that was reclaimed and must be recomputed.
    pub fn target_prefill(&self) -> usize {
        self.spec.prompt_tokens + self.recompute_tokens
    }

    /// Current phase.
    pub fn phase(&self) -> Phase {
        if self.finish_time.is_some() {
            Phase::Finished
        } else if self.prefilled >= self.target_prefill() {
            Phase::Decoding
        } else if self.prefilled > 0 {
            Phase::Prefilling
        } else {
            Phase::Queued
        }
    }

    /// Prompt (plus post-preemption recompute) tokens still to prefill.
    pub fn remaining_prompt(&self) -> usize {
        self.target_prefill() - self.prefilled
    }

    /// Context length (tokens in the KV cache) the request has right now,
    /// counting the token being generated this iteration.
    pub fn context_len(&self) -> usize {
        if self.prefilled >= self.target_prefill() {
            self.spec.prompt_tokens + self.generated
        } else {
            self.prefilled
        }
    }

    /// Tokens of work (prompt + output) still to be processed. The load
    /// signal cluster routers sum over a replica's unfinished requests.
    pub fn remaining_tokens(&self) -> usize {
        self.remaining_prompt() + self.spec.output_tokens.saturating_sub(self.generated)
    }

    /// Record that `tokens` prompt tokens were prefilled, completing at
    /// `time`. If this completes the prompt, the first output token is
    /// produced and TTFT is recorded. After a preemption the same path
    /// recomputes the reclaimed KV instead; reaching the target then simply
    /// resumes decoding (the first token was already produced).
    pub fn record_prefill(&mut self, tokens: usize, time: f64) {
        debug_assert!(tokens <= self.remaining_prompt());
        if self.prefill_start_time.is_none() {
            self.prefill_start_time = Some(time);
        }
        self.prefilled += tokens;
        if self.prefilled >= self.target_prefill() && self.first_token_time.is_none() {
            self.first_token_time = Some(time);
            self.generated = 1;
            self.token_times.push(time);
            self.check_finished(time);
        }
    }

    /// Record that `tokens` leading prompt tokens were satisfied from the
    /// prefix cache at admission: they advance prefill progress without ever
    /// being scheduled. The cap of one-less-than-the-target is the caller's
    /// job ([`crate::KvCacheManager`] enforces it), so at least one token is
    /// always computed and TTFT stays well defined.
    pub fn note_cached_prefix(&mut self, tokens: usize) {
        debug_assert!(self.prefilled + tokens < self.target_prefill());
        self.prefilled += tokens;
        self.cached_prompt_tokens += tokens;
    }

    /// Preempt a decoding request: its KV blocks were reclaimed, so before it
    /// can decode again it must re-prefill the prompt *and* recompute the KV
    /// of every token it has generated so far. Latency bookkeeping
    /// (`token_times`, TTFT) is untouched — the preemption shows up as a long
    /// inter-token gap, exactly as it would on a real replica.
    pub fn preempt(&mut self) {
        debug_assert_eq!(self.phase(), Phase::Decoding);
        self.recompute_tokens = self.generated;
        self.prefilled = 0;
        self.prefill_start_time = None;
        self.restarts += 1;
    }

    /// Record that one decode token completed at `time`.
    pub fn record_decode_token(&mut self, time: f64) {
        debug_assert_eq!(self.phase(), Phase::Decoding);
        self.generated += 1;
        self.token_times.push(time);
        self.check_finished(time);
    }

    fn check_finished(&mut self, time: f64) {
        if self.generated >= self.spec.output_tokens {
            self.finish_time = Some(time);
        }
    }

    /// Width of this request's next speculative round at depth `k`: how many
    /// tokens the round drafts and verifies. A request never drafts past its
    /// remaining output budget, and every round carries at least its one
    /// mandatory decode token.
    pub fn spec_width(&self, k: usize) -> usize {
        k.min(self.spec.output_tokens.saturating_sub(self.generated))
            .max(1)
    }

    /// Un-mint the last `n` generated tokens: the rejected suffix of a
    /// speculative round. Progress, the per-token latency samples and any
    /// finish stamped by the optimistic mint are rolled back together, so a
    /// request that speculated past its end is indistinguishable from one
    /// that never did. The KV-side truncation (releasing now-unused tail
    /// blocks) is the engine's job.
    ///
    /// # Panics
    ///
    /// Debug-asserts that the rollback stays within this round's mint (the
    /// first token, produced by prefill, is never rolled back).
    pub fn rollback(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        debug_assert!(
            n < self.generated,
            "rollback({n}) of a request with {} generated tokens",
            self.generated
        );
        self.generated -= n;
        self.token_times.truncate(self.token_times.len() - n);
        if self.generated < self.spec.output_tokens {
            self.finish_time = None;
        }
    }

    /// Time to first token, if the first token has been produced.
    pub fn ttft(&self) -> Option<f64> {
        self.first_token_time.map(|t| t - self.spec.arrival)
    }

    /// End-to-end request latency, if finished.
    pub fn latency(&self) -> Option<f64> {
        self.finish_time.map(|t| t - self.spec.arrival)
    }

    /// Time-between-tokens samples (gaps between consecutive output tokens).
    pub fn tbts(&self) -> Vec<f64> {
        self.token_times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Whether any decode gap exceeded `threshold` seconds (a generation
    /// stall in the paper's terminology).
    pub fn has_stall(&self, threshold: f64) -> bool {
        self.tbts().iter().any(|&t| t > threshold)
    }

    /// TTFT slack against this request's SLO: deadline minus achieved TTFT
    /// (positive = met with room to spare). `None` when the request has no
    /// SLO or no first token yet.
    pub fn ttft_slack(&self) -> Option<f64> {
        let slo = self.spec.slo?;
        Some(slo.ttft_deadline - self.ttft()?)
    }

    /// Whether the first token arrived within the TTFT deadline. Vacuously
    /// true for requests without an SLO; false if no first token yet (a shed
    /// request never meets its deadline).
    pub fn meets_ttft(&self) -> bool {
        match self.spec.slo {
            None => true,
            Some(slo) => self.ttft().is_some_and(|t| t <= slo.ttft_deadline),
        }
    }

    /// Whether every decode gap stayed within the TBT target (the stall-free
    /// criterion). Vacuously true for requests without an SLO.
    pub fn meets_tbt(&self) -> bool {
        match self.spec.slo {
            None => true,
            Some(slo) => !self.has_stall(slo.tbt_target),
        }
    }

    /// Whether the request met both halves of its SLO — the per-request
    /// goodput criterion. Vacuously true without an SLO (every completed
    /// request is good throughput when nothing was promised).
    pub fn meets_slo(&self) -> bool {
        self.meets_ttft() && self.meets_tbt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_phases() {
        let mut r = Request::new(0, RequestSpec::new(1.0, 100, 3));
        assert_eq!(r.phase(), Phase::Queued);
        r.record_prefill(60, 2.0);
        assert_eq!(r.phase(), Phase::Prefilling);
        assert_eq!(r.remaining_prompt(), 40);
        r.record_prefill(40, 3.0);
        assert_eq!(r.phase(), Phase::Decoding);
        assert_eq!(r.ttft(), Some(2.0));
        assert_eq!(r.generated, 1);
        r.record_decode_token(3.5);
        r.record_decode_token(4.5);
        assert_eq!(r.phase(), Phase::Finished);
        assert_eq!(r.latency(), Some(3.5));
        assert_eq!(r.tbts(), vec![0.5, 1.0]);
    }

    #[test]
    fn stall_detection() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 10, 3));
        r.record_prefill(10, 1.0);
        r.record_decode_token(1.1);
        r.record_decode_token(2.5);
        assert!(r.has_stall(0.5));
        assert!(!r.has_stall(2.0));
    }

    #[test]
    fn context_length_tracks_progress() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 8, 4));
        assert_eq!(r.context_len(), 0);
        r.record_prefill(8, 1.0);
        assert_eq!(r.context_len(), 9);
        r.record_decode_token(1.2);
        assert_eq!(r.context_len(), 10);
    }

    #[test]
    fn remaining_tokens_counts_down_to_zero() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 8, 3));
        assert_eq!(r.remaining_tokens(), 11);
        r.record_prefill(4, 0.5);
        assert_eq!(r.remaining_tokens(), 7);
        r.record_prefill(4, 1.0); // prompt done, first token produced
        assert_eq!(r.remaining_tokens(), 2);
        r.record_decode_token(1.1);
        r.record_decode_token(1.2);
        assert_eq!(r.phase(), Phase::Finished);
        assert_eq!(r.remaining_tokens(), 0);
    }

    #[test]
    fn pd_ratio_and_totals() {
        let s = RequestSpec::new(0.0, 1500, 100);
        assert!((s.pd_ratio() - 15.0).abs() < 1e-12);
        assert_eq!(s.total_tokens(), 1600);
    }

    #[test]
    #[should_panic(expected = "at least one prompt token")]
    fn zero_prompt_rejected() {
        let _ = RequestSpec::new(0.0, 0, 1);
    }

    #[test]
    fn preemption_forces_recompute_before_decoding_resumes() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 32, 8));
        r.record_prefill(32, 1.0);
        r.record_decode_token(1.1);
        r.record_decode_token(1.2);
        assert_eq!(r.generated, 3);
        assert_eq!(r.context_len(), 35);

        r.preempt();
        assert_eq!(r.phase(), Phase::Queued);
        assert_eq!(r.restarts, 1);
        // Prompt plus the three generated tokens must be re-prefilled.
        assert_eq!(r.remaining_prompt(), 35);
        assert_eq!(r.context_len(), 0);

        // Restore: partial recompute, then completion resumes decode without
        // minting a duplicate first token.
        r.record_prefill(20, 2.0);
        assert_eq!(r.phase(), Phase::Prefilling);
        r.record_prefill(15, 2.5);
        assert_eq!(r.phase(), Phase::Decoding);
        assert_eq!(r.generated, 3, "restore must not re-produce tokens");
        assert_eq!(r.context_len(), 35);
        r.record_decode_token(2.6);
        assert_eq!(r.generated, 4);
        // The preemption gap is visible in the TBT samples.
        assert!(r.tbts().iter().any(|&g| g > 1.0));
        assert_eq!(r.ttft(), Some(1.0), "TTFT is from the first residency");
    }

    #[test]
    fn cached_prefix_advances_prefill_without_scheduling() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 100, 4));
        r.note_cached_prefix(64);
        assert_eq!(r.phase(), Phase::Prefilling);
        assert_eq!(r.remaining_prompt(), 36);
        assert_eq!(r.cached_prompt_tokens, 64);
        r.record_prefill(36, 1.0);
        assert_eq!(r.phase(), Phase::Decoding);
        assert_eq!(r.ttft(), Some(1.0));
    }

    #[test]
    fn token_fingerprints_define_sharing() {
        let a = PromptContent::shared(7, 32, 100);
        let b = PromptContent::shared(7, 32, 200);
        let c = PromptContent::unique(100);
        // Same system-prompt group: identical inside the prefix region.
        assert_eq!(a.token_at(0), b.token_at(0));
        assert_eq!(a.token_at(31), b.token_at(31));
        // Different lineages diverge after it.
        assert_ne!(a.token_at(32), b.token_at(32));
        // Same lineage, no prefix region: matches `a` beyond the prefix.
        assert_eq!(a.token_at(32), c.token_at(32));
        // Position matters.
        assert_ne!(a.token_at(0), a.token_at(1));
        // Opaque has no identity at all.
        assert_eq!(PromptContent::Opaque.token_at(0), None);
        assert!(!PromptContent::Opaque.is_shareable());
        assert!(a.is_shareable());
    }

    #[test]
    fn slo_compliance_is_graded_per_target() {
        let slo = SloSpec::new("interactive", 2.0, 0.3);
        let mut r = Request::new(0, RequestSpec::new(1.0, 10, 3).with_slo(slo));
        // No first token yet: TTFT unmet, TBT vacuously met (no gaps).
        assert!(!r.meets_ttft());
        assert!(r.ttft_slack().is_none());
        r.record_prefill(10, 2.5); // TTFT = 1.5 <= 2.0
        r.record_decode_token(2.7);
        r.record_decode_token(3.2); // gap 0.5 > 0.3: TBT violated
        assert!(r.meets_ttft());
        assert!((r.ttft_slack().unwrap() - 0.5).abs() < 1e-12);
        assert!(!r.meets_tbt());
        assert!(!r.meets_slo());

        // Without an SLO every criterion is vacuously met.
        let mut plain = Request::new(1, RequestSpec::new(0.0, 10, 2));
        plain.record_prefill(10, 100.0);
        plain.record_decode_token(200.0);
        assert!(plain.meets_slo());
        assert!(plain.ttft_slack().is_none());
    }

    #[test]
    fn late_first_token_misses_the_deadline() {
        let slo = SloSpec::new("interactive", 1.0, 10.0);
        let mut r = Request::new(0, RequestSpec::new(0.0, 10, 2).with_slo(slo));
        r.record_prefill(10, 1.5);
        r.record_decode_token(1.6);
        assert!(!r.meets_ttft());
        assert!(r.meets_tbt());
        assert!(!r.meets_slo());
        assert!(r.ttft_slack().unwrap() < 0.0);
    }

    #[test]
    #[should_panic(expected = "ttft_deadline must be positive")]
    fn zero_ttft_deadline_rejected() {
        let _ = SloSpec::new("x", 0.0, 1.0);
    }

    #[test]
    fn builder_matches_the_positional_shims_bit_for_bit() {
        let slo = SloSpec::new("interactive", 2.0, 0.3);
        let content = PromptContent::shared(7, 32, 100);
        let built = RequestSpec::builder(1.5, 4096, 128)
            .content(content)
            .slo(slo)
            .build();
        let shimmed = RequestSpec::new(1.5, 4096, 128)
            .with_content(content)
            .with_slo(slo);
        assert_eq!(built, shimmed);
        // Defaults: the default tenant at normal priority.
        assert_eq!(built.tenant, TenantId::DEFAULT);
        assert_eq!(built.priority, Priority::Normal);
        // The tenancy attributes round-trip through both surfaces.
        let a = RequestSpec::builder(0.0, 10, 2)
            .tenant(TenantId(9))
            .priority(Priority::High)
            .build();
        let b = RequestSpec::new(0.0, 10, 2)
            .with_tenant(TenantId(9))
            .with_priority(Priority::High);
        assert_eq!(a, b);
        assert_eq!(a.tenant, TenantId(9));
        assert_eq!(a.priority, Priority::High);
    }

    #[test]
    #[should_panic(expected = "at least one output token")]
    fn builder_rejects_zero_output() {
        let _ = RequestSpec::builder(0.0, 10, 0);
    }

    #[test]
    fn priority_classes_are_ordered() {
        assert!(Priority::High > Priority::Normal);
        assert!(Priority::Normal > Priority::Low);
        assert_eq!(Priority::default(), Priority::Normal);
        assert_eq!(Priority::High.as_str(), "high");
        assert_eq!(TenantId::default(), TenantId(0));
        assert_eq!(TenantId(3).to_string(), "tenant-3");
    }

    #[test]
    fn spec_width_caps_at_remaining_output() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 8, 5));
        r.record_prefill(8, 1.0); // generated = 1, remaining = 4
        assert_eq!(r.spec_width(3), 3);
        assert_eq!(r.spec_width(8), 4);
        r.record_decode_token(1.1);
        r.record_decode_token(1.2);
        r.record_decode_token(1.3); // generated = 4, remaining = 1
        assert_eq!(r.spec_width(8), 1);
        // Width never drops below the mandatory decode token.
        assert_eq!(r.spec_width(0), 1);
    }

    #[test]
    fn rollback_unminds_tokens_and_clears_optimistic_finish() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 8, 4));
        r.record_prefill(8, 1.0);
        // Optimistically mint the remaining three tokens (a k=3 round)...
        r.record_decode_token(1.1);
        r.record_decode_token(1.1);
        r.record_decode_token(1.1);
        assert_eq!(r.phase(), Phase::Finished);
        assert_eq!(r.token_times.len(), 4);
        // ...then verification rejects the last two.
        r.rollback(2);
        assert_eq!(r.generated, 2);
        assert_eq!(r.token_times.len(), 2);
        assert_eq!(r.phase(), Phase::Decoding, "optimistic finish is undone");
        assert_eq!(r.finish_time, None);
        assert_eq!(r.context_len(), 10);
        // A zero rollback (fully accepted round) changes nothing.
        let before = r.clone();
        r.rollback(0);
        assert_eq!(r, before);
        // Finishing again after the rollback sticks.
        r.record_decode_token(2.0);
        r.record_decode_token(2.5);
        assert_eq!(r.phase(), Phase::Finished);
        assert_eq!(r.latency(), Some(2.5));
    }

    #[test]
    fn single_output_token_finishes_at_prefill() {
        let mut r = Request::new(0, RequestSpec::new(0.0, 4, 1));
        r.record_prefill(4, 2.0);
        assert_eq!(r.phase(), Phase::Finished);
        assert_eq!(r.latency(), Some(2.0));
        assert!(r.tbts().is_empty());
    }
}
