//! # llm-serving: an iteration-level LLM serving simulator
//!
//! The end-to-end evaluation of POD-Attention replaces the attention backend
//! inside Sarathi-Serve (which is built on vLLM) and measures offline
//! throughput and online latency. This crate reproduces that serving stack as
//! an iteration-level simulator:
//!
//! * [`ModelConfig`] — Yi-6B, Llama-2-7B and Llama-3-8B as deployed in the
//!   paper (Table 4), including tensor parallelism and KV-cache capacity.
//! * [`SchedulerKind`] — the original vLLM prefill-prioritizing scheduler and
//!   Sarathi-Serve's chunked-prefill stall-free scheduler.
//! * [`IterationCostModel`] — a roofline cost model for the linear operators
//!   plus the attention estimator from [`attn_kernels`], switchable between
//!   FA_Serial (the baselines) and POD (the paper's system).
//! * [`ServingEngine`] — a **step-able** replica simulator: admits requests
//!   against a paged KV cache ([`KvCacheManager`]), forms hybrid batches,
//!   prices every iteration and tracks TTFT, TBT, request latency, stalls and
//!   throughput ([`ServingReport`]). Drive it to completion with
//!   [`ServingEngine::run`], or one iteration at a time with
//!   [`ServingEngine::submit`] / [`ServingEngine::step`] (returning
//!   [`IterationOutcome`]) — `run` is itself a loop over `step`.
//! * [`Cluster`] — N replica engines on a shared virtual clock behind a
//!   pluggable [`RouterPolicy`] (round-robin, least-outstanding-tokens, or
//!   prefill/decode-aware), with fleet-level percentiles and replica
//!   imbalance in [`ClusterReport`].
//! * [`BlockPool`] / [`PrefixIndex`] — the prefix-sharing paged KV-cache
//!   block subsystem: ref-counted blocks, a radix trie over token-fingerprint
//!   chunks, copy-on-write on divergence and LRU eviction. Enabled per
//!   config via [`KvCachePolicy::Paged`]; requests carry [`PromptContent`]
//!   stream identities, shared-prefix traces come from
//!   [`SharedPrefixWorkload`], and [`RouterPolicy::PrefixAffinity`] routes
//!   on cached-prefix length.
//! * [`SloSpec`] / [`SloMix`] / [`AdmissionPolicy`] / [`AutoscalerConfig`] —
//!   the SLO subsystem: requests carry optional TTFT/TBT objectives (stamped
//!   onto traces by weighted class mixes), reports grade **goodput**
//!   (deadline-meeting completions), SLO attainment and per-class violation
//!   breakdowns ([`SloClassReport`]), admission can shed requests whose
//!   deadlines are already unmeetable, and the cluster can autoscale on
//!   sustained backlog — scale-out mid-run, drain-then-retire on slack, with
//!   hysteresis, bounds and a `replica_seconds` cost metric.
//! * [`ReplicaRole`] / [`KvMigration`] — disaggregated prefill/decode
//!   serving, the strongest alternative the paper argues against:
//!   prefill-only replicas complete prompts and export [`PrefillHandoff`]s
//!   (the request plus its serialized [`KvChain`]), a bandwidth/latency
//!   cost model with optional ISO-style compute overlap prices the
//!   transfer, and decode-only replicas adopt the chains and resume the
//!   decodes — with conservation guarantees (no request or block lost or
//!   duplicated across a handoff) and `migrated_*` / `migration_stall_time`
//!   metrics plus per-role [`RoleReport`] aggregation.
//! * [`TenantId`] / [`Priority`] / [`FairQueueConfig`] — multi-tenant
//!   fairness: requests carry a tenant and an optional priority class,
//!   admission runs weighted fair queueing over queued prefill work (so one
//!   tenant's flash crowd can't monopolize the chunked-prefill slots),
//!   priority classes preempt running decodes through the paged preemption
//!   path, and reports break goodput, attainment, TTFT and preemptions
//!   down per tenant ([`TenantReport`]). Adversarial multi-tenant traces
//!   come from [`TenantMix`].
//! * [`trace`] ([`TraceConfig`] / [`FlightRecording`]) — request-lifecycle
//!   tracing: a zero-cost-when-off, deterministic flight recorder capturing
//!   every enqueue/admit/shed/preempt/migrate/finish, per-iteration batch
//!   composition, KV block traffic and periodic timeline samples into a
//!   bounded per-replica ring buffer, exported as Chrome `trace_event` JSON
//!   (for `chrome://tracing`/Perfetto) or compact JSONL. Attach via
//!   [`ServingConfig::with_tracing`].
//! * [`Workload`] — synthetic traces matched to the paper's internal and
//!   arXiv-Summarization workload statistics, plus the offline and P:D-ratio
//!   sweeps and time-varying (bursty / diurnal) arrival schedules
//!   ([`RateSchedule`]).
//! * [`JsonValue`] — the dependency-free JSON writer/parser every report and
//!   bench trend file serializes through.
//!
//! # Example: Sarathi vs. Sarathi+POD on a small offline batch
//!
//! ```
//! use gpu_sim::GpuConfig;
//! use llm_serving::{offline_long_context, ModelConfig, ServingConfig, ServingEngine};
//!
//! let model = ModelConfig::llama3_8b();
//! let gpu = GpuConfig::a100_80gb();
//! let requests = offline_long_context(8, 16 * 1024, 128);
//!
//! let sarathi = ServingEngine::new(ServingConfig::sarathi(model.clone(), gpu.clone(), 1024))
//!     .run(requests.clone());
//! let pod = ServingEngine::new(ServingConfig::sarathi_pod(model, gpu, 1024)).run(requests);
//! assert!(pod.makespan <= sarathi.makespan);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod blocks;
mod cluster;
mod engine;
mod json;
mod kvcache;
mod linear;
mod metrics;
mod model;
mod request;
mod rng;
mod scheduler;
mod sketch;
mod speculative;
pub mod trace;
mod workload;

pub use blocks::{
    blocks_for, BlockId, BlockPool, Cursor, KvChain, PrefixIndex, PrefixMatch, BLOCK_TOKENS,
};
pub use cluster::{
    AutoscalerConfig, Cluster, ClusterConfig, ClusterReport, KvMigration, ReplicaRole, RoleReport,
    RouterPolicy, LONG_PREFILL_TOKENS,
};
pub use engine::{
    AdmissionPolicy, FairQueueConfig, IterationOutcome, IterationStats, KvCachePolicy,
    PrefillHandoff, ServingConfig, ServingEngine,
};
pub use json::{JsonParseError, JsonValue};
pub use kvcache::KvCacheManager;
pub use linear::{IterationBreakdown, IterationCostModel};
pub use metrics::{
    percentile, ReportAccumulator, ServingReport, SloClassReport, SummaryStats, TenantReport,
};
pub use model::{ModelConfig, ParamCounts};
pub use request::{
    Phase, Priority, PromptContent, Request, RequestSpec, RequestSpecBuilder, SloSpec, TenantId,
};
pub use rng::SplitMix64;
pub use scheduler::{plan_batch, AdmissionDecision, BatchPlan, SchedulerKind};
pub use sketch::{QuantileSketch, SketchMergeError, DEFAULT_RELATIVE_ERROR};
pub use speculative::{AcceptanceModel, DecodeMode, DraftModelConfig};
pub use trace::{
    FlightRecording, SpanOutcomes, TimelineSummary, TraceCategory, TraceConfig, TraceEvent,
    TraceEventKind, TraceFilter, TraceRecorder,
};
pub use workload::{
    offline_long_context, pd_ratio_workload, RateSchedule, RateSegment, SharedPrefixWorkload,
    SloMix, TenantMix, TenantTraffic, Workload,
};
