//! # pod-repro: reproduction of POD-Attention (ASPLOS 2025)
//!
//! This meta-crate re-exports the public API of every crate in the workspace
//! so that examples and downstream users can depend on a single package.
//!
//! * [`gpu_sim`] — the simulated GPU substrate (SMs, CTAs, streams, roofline
//!   contention engine).
//! * [`attn_kernels`] — work-models of FlashAttention / FlashInfer prefill and
//!   decode kernels and hybrid-batch descriptors.
//! * [`pod_attention`] — the paper's contribution: fused prefill+decode
//!   attention with SM-aware CTA scheduling.
//! * [`fusion_lab`] — the concurrent-execution case study of §3 (streams,
//!   CTA-parallel, warp-parallel/HFuse, intra-thread, SM-aware fusion).
//! * [`llm_serving`] — an iteration-level LLM serving simulator with vLLM and
//!   Sarathi-Serve schedulers used for the end-to-end evaluation. The engine
//!   is step-able ([`llm_serving::ServingEngine::step`]), and the
//!   [`llm_serving::Cluster`] layer runs N replicas on a shared virtual
//!   clock behind a pluggable router for fleet-scale experiments — including
//!   disaggregated prefill/decode fleets with KV migration
//!   ([`llm_serving::ReplicaRole`], [`llm_serving::KvMigration`]).
//!
//! See the repository README for a guided tour and `docs/ARCHITECTURE.md`
//! for the crate map, request lifecycle and bench → paper-figure index.

#![warn(missing_docs)]

pub use attn_kernels;
pub use fusion_lab;
pub use gpu_sim;
pub use llm_serving;
pub use pod_attention;

// The cluster-scale serving surface, re-exported at the top level: these are
// the types fleet experiments compose, and downstream users should not need
// to know which workspace crate owns them. One `use pod_repro::{...}` covers
// the whole user-facing API, including the multi-tenant fairness surface
// (`TenantId` / `Priority` / `FairQueueConfig` / `TenantMix`) and the
// request/config builders (`RequestSpec::builder`, the `with_*` chains on
// `ServingConfig` / `ClusterConfig`).
pub use llm_serving::{
    Cluster, ClusterConfig, ClusterReport, FairQueueConfig, IterationOutcome, KvMigration,
    Priority, RateSchedule, ReplicaRole, RequestSpec, RequestSpecBuilder, RouterPolicy,
    ServingConfig, ServingEngine, ServingReport, TenantId, TenantMix, TenantReport, TenantTraffic,
};
