//! Prefix-sharing walkthrough: the same shared-system-prompt workload served
//! three ways — conservative admission, paged without caching, and paged
//! with the radix prefix index — plus a prefix-affinity fleet.
//!
//! Demonstrates the blocks subsystem end to end: prompts annotated with
//! [`llm_serving::PromptContent`] token streams, admission matching against
//! the prefix index (chunked prefill starts at the matched offset),
//! copy-on-write on mid-block divergence, and the report counters that
//! quantify it all.
//!
//! Run with:
//! ```text
//! cargo run --release --example prefix_caching
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ModelConfig, RouterPolicy, ServingConfig, ServingEngine,
    SharedPrefixWorkload, Workload,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();

    // Four agent "products", each with a ~2K-token system prompt (not
    // block-aligned, so divergence exercises copy-on-write); 80% of requests
    // belong to a product and 35% of those are multi-turn follow-ups whose
    // prompt embeds the whole prior conversation.
    let workload = SharedPrefixWorkload::new(Workload::internal(), 4, 2043, 0.8, 0.35);
    let trace = workload.generate(80, 1.0, 42);
    println!(
        "{} requests, {} system-prompt groups of {} tokens, share ratio {:.0}%, {:.0}% multi-turn\n",
        trace.len(),
        workload.groups,
        workload.prefix_tokens,
        workload.share_ratio * 100.0,
        workload.followup_ratio * 100.0,
    );

    let base = ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024);
    let systems = [
        ("conservative (reserve prompt+output)", base.clone()),
        ("paged, caching off", base.clone().with_paged_kv(false)),
        ("paged + prefix caching", base.clone().with_paged_kv(true)),
    ];
    for (name, config) in &systems {
        let report = ServingEngine::new(config.clone()).run(trace.clone());
        println!("{name}  [{}]", report.system);
        println!(
            "  TTFT mean/p99: {:.2} / {:.2} s | latency mean {:.2} s | makespan {:.1} s",
            report.ttft.mean, report.ttft.p99, report.request_latency.mean, report.makespan,
        );
        println!(
            "  prefill scheduled {} toks | cached {} toks (hit rate {:.1}%) | \
             blocks reused {} | CoW {} | evicted {} | preemptions {}\n",
            report.prefill_tokens_scheduled,
            report.cached_prefix_tokens,
            report.prefix_hit_rate() * 100.0,
            report.blocks_reused,
            report.cow_copies,
            report.blocks_evicted,
            report.preemptions,
        );
    }

    // The same trace against a 4-replica fleet: prefix-affinity routing
    // concentrates each product's requests where their prefix is already
    // cached, beating load-blind round-robin on hit rate.
    println!("4-replica fleet, paged + prefix caching:");
    for router in [RouterPolicy::RoundRobin, RouterPolicy::PrefixAffinity] {
        let config = ClusterConfig::new(base.clone().with_paged_kv(true), 4, router);
        let report = Cluster::new(config).run(trace.clone());
        println!(
            "  {:<16} hit rate {:>5.1}% | TTFT mean {:.2} s | {:.1} req/min | assigned {:?}",
            report.router,
            report.aggregate.prefix_hit_rate() * 100.0,
            report.aggregate.ttft.mean,
            report.requests_per_minute(),
            report.assigned_per_replica,
        );
    }
}
