//! Disaggregated prefill/decode serving vs. POD colocation, side by side.
//!
//! Builds two fleets of the same size — four colocated Sarathi+POD replicas
//! and a 2-prefill + 2-decode split — and serves the same SLO-tagged trace
//! through both, across three KV-migration links (a 2 GB/s commodity link
//! with ISO-style compute overlap, 25 GB/s InfiniBand, and the zero-cost
//! ideal). Prints goodput, attainment, TTFT/TBT tails and the migration
//! counters, showing where each design wins:
//!
//! * **colocation** keeps every GPU usable for both phases and lets the
//!   fused POD kernel overlap them inside one device;
//! * **disaggregation** isolates decode from prefill interference, but pays
//!   a per-handoff KV transfer stall and a static capacity split.
//!
//! Run with:
//! ```text
//! cargo run --release --example disaggregated_serving
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, KvMigration, ModelConfig, RouterPolicy, ServingConfig, SloMix, Workload,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let base = ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024);

    // 3 qps of the paper's internal workload mix, 70% interactive (tight
    // TTFT/TBT deadlines) / 30% batch — near the 4-replica saturation point,
    // where the colocation-vs-disaggregation choice actually matters.
    let trace = SloMix::interactive_batch().apply(Workload::internal().generate(96, 3.0, 7), 7);
    println!(
        "96 requests at 3.0 qps, 70/30 interactive/batch SLOs, {} on 4 replicas\n",
        model.name
    );

    let colocated = Cluster::new(ClusterConfig::new(
        base.clone(),
        4,
        RouterPolicy::decode_aware(),
    ))
    .run(trace.clone());
    print_row("4x colocated", &colocated);

    for migration in [
        KvMigration::commodity().with_overlap(),
        KvMigration::infiniband(),
        KvMigration::free(),
    ] {
        let report = Cluster::new(ClusterConfig::disaggregated(
            base.clone(),
            2,
            2,
            RouterPolicy::decode_aware(),
            migration,
        ))
        .run(trace.clone());
        print_row(&format!("2P+2D ({})", report.migration), &report);
    }

    println!(
        "\nReading the table: disaggregation's TBT tail hides the migration stall only while\n\
         the link is fast; its goodput trails colocation because two prefill replicas bottleneck\n\
         what four colocated replicas absorb — the comparison Figure 19 sweeps across loads."
    );
}

fn print_row(label: &str, report: &llm_serving::ClusterReport) {
    let a = &report.aggregate;
    println!(
        "{label:<28} goodput {:>3} ({:>5.1}/min)  attainment {:>5.1}%  TTFT p99 {:>5.2} s  \
         TBT max {:>5.3} s  migrated {:>3} ({} tokens, {:.2} s stalled)",
        a.goodput_requests(),
        a.goodput_per_minute(),
        a.slo_attainment() * 100.0,
        a.ttft.p99,
        a.tbt.max,
        a.migrated_in_requests,
        a.migrated_tokens,
        a.migration_stall_time,
    );
}
