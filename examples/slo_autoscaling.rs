//! SLO-aware serving walkthrough: deadlines, goodput, deadline shedding and
//! the cluster autoscaler.
//!
//! A two-replica Sarathi+POD fleet faces a flash crowd far beyond its
//! capacity. We grade it against a 70/30 interactive/batch SLO mix four
//! ways: as-is, with deadline-shedding admission, with a backlog-driven
//! autoscaler, and with both. The interesting numbers are **goodput**
//! (completions inside both the TTFT deadline and the TBT target) and
//! **replica-seconds** (what the fleet cost) — raw throughput barely moves,
//! which is exactly why latency-blind metrics hide overload pain.
//!
//! Run with `cargo run --release --example slo_autoscaling`.

use gpu_sim::GpuConfig;
use llm_serving::{
    AdmissionPolicy, AutoscalerConfig, Cluster, ClusterConfig, ClusterReport, ModelConfig,
    RateSchedule, RouterPolicy, ServingConfig, SloMix, Workload,
};

fn describe(tag: &str, r: &ClusterReport) {
    let a = &r.aggregate;
    println!(
        "{tag:<18} goodput {:>3}/{:<3} ({:>5.1}/min)  attainment {:>5.1}%  shed {:>2}  \
         peak replicas {}  replica-sec {:>6.1}  TTFT p99 {:>5.2}s",
        a.goodput_requests(),
        a.completed + a.shed_requests,
        a.goodput_per_minute(),
        a.slo_attainment() * 100.0,
        a.shed_requests,
        r.peak_replicas,
        r.replica_seconds,
        a.ttft.p99,
    );
    for class in &a.slo_classes {
        println!(
            "{:<18}   {:<12} {:>3} finished, {:>3} met ({:>5.1}%), {} late first token, \
             {} stalled, {} shed",
            "",
            class.class,
            class.finished,
            class.met,
            class.attainment() * 100.0,
            class.ttft_violations,
            class.tbt_violations,
            class.shed,
        );
    }
}

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let base = ServingConfig::sarathi_pod(model, gpu, 1024);

    // A burst at ~6x fleet capacity for 40 s, then calm: the canonical
    // autoscaling shape.
    let schedule = RateSchedule::bursty(0.5, 12.0, 30.0, 40.0);
    let trace = Workload::internal().generate_trace(140, &schedule, 42);
    // Stamp SLOs on: 70% interactive (TTFT <= 2 s, TBT <= 200 ms), 30%
    // batch (30 s, 1 s). Sizes and arrivals are untouched.
    let specs = SloMix::interactive_batch().apply(trace, 42);

    println!(
        "flash crowd: {} requests, burst at 12 qps against a 2-replica fleet\n",
        specs.len()
    );

    let fixed = ClusterConfig::new(base.clone(), 2, RouterPolicy::decode_aware());
    describe(
        "fixed fleet",
        &Cluster::new(fixed.clone()).run(specs.clone()),
    );

    let shedding = ClusterConfig::new(
        base.clone().with_admission(AdmissionPolicy::DeadlineShed),
        2,
        RouterPolicy::decode_aware(),
    );
    describe(
        "+ shedding",
        &Cluster::new(shedding.clone()).run(specs.clone()),
    );

    let autoscaled = fixed.clone().with_autoscaler(AutoscalerConfig::new(2, 8));
    describe("+ autoscaler", &Cluster::new(autoscaled).run(specs.clone()));

    let both = shedding.with_autoscaler(AutoscalerConfig::new(2, 8));
    let both_report = Cluster::new(both).run(specs);
    describe("+ both", &both_report);

    println!(
        "\nThe autoscaler scaled out {} time(s) and drained {} replica(s) back after the burst;\n\
         shedding gives up on requests whose TTFT deadline already passed in the queue, so the\n\
         chunk budget goes to requests that can still count toward goodput.",
        both_report.scale_out_events, both_report.scale_in_events,
    );
}
