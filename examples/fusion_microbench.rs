//! The §3 case study in miniature: why streams, CTA-parallel, warp-parallel
//! and intra-thread fusion all fall short of SM-aware CTA scheduling when a
//! compute-bound and a memory-bound kernel are run together.
//!
//! Run with:
//! ```text
//! cargo run --release --example fusion_microbench
//! ```

use fusion_lab::{ComputeKernel, FusionExecutor, FusionStrategy, MemoryKernel, Operation};
use gpu_sim::{GpuConfig, SimError};

fn main() -> Result<(), SimError> {
    let gpu = GpuConfig::a100_80gb();
    let exec = FusionExecutor::new(gpu.clone());

    // The balanced point of Figure 7: at 100 compute iterations the two
    // kernels take the same time when run back to back.
    let compute = ComputeKernel::figure7(100, &gpu);
    let memory = MemoryKernel::figure7(&gpu);
    let a = Operation::new("scalar-multiply loop", compute.footprint(), compute.ctas());
    let b = Operation::new("three-array add", memory.footprint(), memory.ctas());

    let serial = exec.runtime(&a, &b, FusionStrategy::Serial)?;
    println!("{:<22} {:>10} {:>12}", "method", "time (ms)", "vs serial");
    for strategy in FusionStrategy::all() {
        let t = exec.runtime(&a, &b, strategy)?;
        println!(
            "{:<22} {:>10.2} {:>11.0}%",
            strategy.label(),
            t * 1e3,
            (serial / t - 1.0) * 100.0
        );
    }
    let oracle = exec.oracle(&a, &b);
    println!(
        "{:<22} {:>10.2} {:>11.0}%",
        "perfect overlap",
        oracle * 1e3,
        (serial / oracle - 1.0) * 100.0
    );
    println!();
    println!(
        "Only SM-aware CTA scheduling guarantees that every SM holds one CTA of each kind, so\n\
         the compute-bound and memory-bound halves overlap almost perfectly — the mechanism\n\
         POD-Attention applies to prefill and decode attention."
    );
    Ok(())
}
