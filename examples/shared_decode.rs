//! Shared-prefix decode walkthrough: the same shared-system-prompt workload
//! served with and without CoDec-style decode KV dedup.
//!
//! With prefix caching on, requests of one conversation group hold the
//! *same* physical KV blocks for their shared prefix. Their decode steps
//! nevertheless each stream that prefix out of HBM — the batched decode
//! kernel is priced per request over its full context. Decode dedup
//! co-batches resident decodes that share a block chain and prices one pass
//! over each shared chain per iteration instead of one per member; the
//! eliminated reads surface as `decode_kv_tokens_deduped` and shrink
//! per-iteration decode time, i.e. TBT.
//!
//! Run with:
//! ```text
//! cargo run --release --example shared_decode
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{ModelConfig, ServingConfig, ServingEngine, SharedPrefixWorkload, Workload};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();

    // Four agent "products" with ~2K-token system prompts; 90% of requests
    // belong to a product, 35% are multi-turn follow-ups. High sharing and a
    // brisk arrival rate keep several same-group decodes resident at once —
    // the population dedup acts on.
    let workload = SharedPrefixWorkload::new(Workload::internal(), 4, 2043, 0.9, 0.35);
    let specs = workload.generate(96, 3.0, 7);

    let base = ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024).with_paged_kv(true);
    let off = ServingEngine::new(base.clone()).run(specs.clone());
    let on = ServingEngine::new(base.with_decode_dedup(true)).run(specs.clone());

    println!("system (dedup off): {}", off.system);
    println!("system (dedup on):  {}", on.system);
    println!();
    println!("{:<28} {:>12} {:>12}", "metric", "dedup off", "dedup on");
    println!(
        "{:<28} {:>12.4} {:>12.4}",
        "mean TBT (s)", off.tbt.mean, on.tbt.mean
    );
    println!(
        "{:<28} {:>12.4} {:>12.4}",
        "P99 TBT (s)", off.tbt.p99, on.tbt.p99
    );
    println!(
        "{:<28} {:>12.2} {:>12.2}",
        "makespan (s)", off.makespan, on.makespan
    );
    println!(
        "{:<28} {:>12} {:>12}",
        "KV tokens deduped", off.decode_kv_tokens_deduped, on.decode_kv_tokens_deduped
    );
    println!();
    println!(
        "dedup eliminated {} redundant shared-prefix KV token reads,",
        on.decode_kv_tokens_deduped
    );
    println!(
        "cutting mean TBT by {:.1}% and makespan by {:.1}%.",
        (1.0 - on.tbt.mean / off.tbt.mean) * 100.0,
        (1.0 - on.makespan / off.makespan) * 100.0
    );

    // Under the conservative KV policy there is no block identity to group
    // by: requesting dedup changes nothing, label included.
    let conservative = ServingConfig::sarathi(model, gpu, 1024);
    let cons_on =
        ServingEngine::new(conservative.clone().with_decode_dedup(true)).run(specs.clone());
    let cons_off = ServingEngine::new(conservative).run(specs);
    assert_eq!(cons_on, cons_off);
    println!();
    println!(
        "conservative policy: dedup request is inert ({} == {}).",
        cons_on.system, cons_off.system
    );
}
