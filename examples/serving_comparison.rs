//! Offline document-summarization serving: throughput of the three systems
//! the paper compares (vLLM's original scheduler, Sarathi-Serve, and
//! Sarathi-Serve with POD-Attention) on a batch of long documents.
//!
//! Run with:
//! ```text
//! cargo run --release --example serving_comparison
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{offline_long_context, ModelConfig, ServingConfig, ServingEngine};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    // 48 documents of 16K tokens each, 512-token summaries.
    let requests = offline_long_context(48, 16 * 1024, 512);
    let chunk = 1024;

    println!(
        "Summarizing {} documents of 16K tokens with {} ({} layers, TP-{})",
        requests.len(),
        model.name,
        model.num_layers(),
        model.tensor_parallel()
    );
    println!();

    let systems = [
        ServingConfig::vllm(model.clone(), gpu.clone()),
        ServingConfig::sarathi(model.clone(), gpu.clone(), chunk),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), chunk),
    ];

    println!(
        "{:<28} {:>12} {:>12} {:>12} {:>14}",
        "system", "makespan (s)", "req/min", "P99 TBT (s)", "stalls >200ms"
    );
    for config in systems {
        let report = ServingEngine::new(config).run(requests.clone());
        println!(
            "{:<28} {:>12.1} {:>12.1} {:>12.3} {:>13.1}%",
            report.system,
            report.makespan,
            report.requests_per_minute(),
            report.tbt.p99,
            report.stall_fraction_200ms * 100.0
        );
    }
    println!();
    println!(
        "Sarathi+POD finishes the batch fastest while keeping decode latency stall-free —\n\
         the end-to-end effect of overlapping prefill and decode attention (Figure 12)."
    );
}
