//! Fleet-scale serving: a bursty arrival trace against N replicas behind
//! each of the three router policies, with Sarathi+POD replicas.
//!
//! Demonstrates the cluster layer end to end: time-varying trace generation
//! ([`llm_serving::RateSchedule`]), per-arrival routing on live replica
//! state, and the fleet-level [`llm_serving::ClusterReport`] with its
//! replica-imbalance measure — plus the JSON form every report serializes
//! to.
//!
//! Run with:
//! ```text
//! cargo run --release --example cluster_serving
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ModelConfig, RateSchedule, RouterPolicy, ServingConfig, Workload,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let replicas = 4;

    // A flash crowd: 0.3 qps background, 20-second bursts at 8 qps, drawn
    // from the paper's internal workload mix (4K-32K token contexts).
    let schedule = RateSchedule::bursty(0.3, 8.0, 40.0, 20.0);
    let trace = Workload::internal().generate_trace(100, &schedule, 42);
    let span = trace.last().map(|r| r.arrival).unwrap_or(0.0);
    println!(
        "{} requests over {:.0} s (bursty: {:.1} qps base, {:.1} qps bursts), {} x {}",
        trace.len(),
        span,
        0.3,
        8.0,
        replicas,
        model.name,
    );
    println!();

    for router in [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastOutstandingTokens,
        RouterPolicy::decode_aware(),
    ] {
        let base = ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024);
        let mut cluster = Cluster::new(ClusterConfig::new(base, replicas, router));
        let report = cluster.run(trace.clone());
        println!("router: {}", report.router);
        println!(
            "  completed {} | makespan {:.1} s | {:.1} req/min | busy imbalance {:.2}",
            report.aggregate.completed,
            report.aggregate.makespan,
            report.requests_per_minute(),
            report.busy_imbalance,
        );
        println!(
            "  latency mean/p50/p99: {:.2} / {:.2} / {:.2} s | TTFT p50/p99: {:.2} / {:.2} s",
            report.aggregate.request_latency.mean,
            report.aggregate.request_latency.p50,
            report.aggregate.request_latency.p99,
            report.aggregate.ttft.p50,
            report.aggregate.ttft.p99,
        );
        println!(
            "  requests per replica: {:?} | per-replica busy: {:?} s",
            report.assigned_per_replica,
            report
                .per_replica
                .iter()
                .map(|r| (r.busy_time * 10.0).round() / 10.0)
                .collect::<Vec<_>>(),
        );
        println!();
    }

    // Every report serializes to the shared JSON format; show a taste.
    let base = ServingConfig::sarathi_pod(model, gpu, 1024);
    let report = Cluster::new(ClusterConfig::new(base, 2, RouterPolicy::decode_aware())).run(trace);
    let json = report.to_json().to_string_pretty();
    println!("ClusterReport::to_json() (first lines):");
    for line in json.lines().take(12) {
        println!("  {line}");
    }
    println!("  ...");
}
