//! Quickstart: compute the attention of one hybrid batch with POD-Attention
//! and compare it against serial FlashAttention kernels on the simulated
//! A100.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use attn_kernels::{AttentionConfig, HybridBatch};
use gpu_sim::{GpuConfig, SimError};
use pod_attention::PodAttention;

fn main() -> Result<(), SimError> {
    // The paper's main configuration: Llama-3-8B served with tensor
    // parallelism across two A100s (so one GPU sees 16 query / 4 KV heads).
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();

    // A typical Sarathi-style hybrid batch: one 1K-token prefill chunk of a
    // 12K-token prompt, co-scheduled with 80 ongoing decodes at 12K context
    // (configuration C0 from Table 1 of the paper).
    let batch = HybridBatch::config_c0();

    let pod = PodAttention::new(cfg, gpu);
    let plan = pod.plan(&batch);
    println!(
        "fused launch: {} prefill CTAs + {} decode slots ({}), ratio {}:{}",
        plan.prefill_ctas, plan.decode_slots, plan.ctas_per_sm, plan.ratio.0, plan.ratio.1
    );

    let fused = pod.execute(&batch)?;
    let serial = pod.serial_baseline(&batch)?;

    println!();
    println!(
        "serial FlashAttention kernels : {:.3} ms",
        serial.makespan * 1e3
    );
    println!(
        "POD-Attention (fused)         : {:.3} ms",
        fused.makespan * 1e3
    );
    println!(
        "speedup                       : {:.2}x",
        pod.speedup_over_serial(&batch)?
    );
    println!();
    println!(
        "utilization   serial: {:>4.0}% compute / {:>4.0}% memory",
        serial.compute_utilization() * 100.0,
        serial.memory_utilization() * 100.0
    );
    println!(
        "              POD   : {:>4.0}% compute / {:>4.0}% memory",
        fused.compute_utilization() * 100.0,
        fused.memory_utilization() * 100.0
    );
    println!();
    println!(
        "POD keeps both the tensor cores and HBM busy at the same time, which is exactly the\n\
         resource overlap the paper exploits (Figure 1)."
    );
    Ok(())
}
