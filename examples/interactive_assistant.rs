//! Interactive-assistant serving under live load: time-to-first-token,
//! time-between-tokens and generation stalls for an online trace, with and
//! without POD-Attention.
//!
//! Run with:
//! ```text
//! cargo run --release --example interactive_assistant
//! ```

use gpu_sim::GpuConfig;
use llm_serving::{ModelConfig, ServingConfig, ServingEngine, Workload};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    // A synthetic enterprise-assistant trace (long documents pasted into the
    // prompt, short-to-medium answers), arriving at 1 query/second.
    let requests = Workload::internal().generate(96, 1.0, 2024);

    println!(
        "Serving {} requests (mean context ~10.5K tokens) at 1 QPS on {}",
        requests.len(),
        model.name
    );
    println!();

    let systems = [
        ServingConfig::vllm(model.clone(), gpu.clone()),
        ServingConfig::sarathi(model.clone(), gpu.clone(), 1536),
        ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1536),
    ];

    println!(
        "{:<28} {:>10} {:>10} {:>10} {:>10} {:>14}",
        "system", "TTFT P50", "TTFT P99", "TBT P99", "lat P99", "stalls >500ms"
    );
    for config in systems {
        let report = ServingEngine::new(config).run(requests.clone());
        println!(
            "{:<28} {:>9.2}s {:>9.2}s {:>9.3}s {:>9.1}s {:>13.1}%",
            report.system,
            report.ttft.p50,
            report.ttft.p99,
            report.tbt.p99,
            report.request_latency.p99,
            report.stall_fraction_500ms * 100.0
        );
    }
    println!();
    println!(
        "vLLM answers fastest at first but freezes ongoing generations whenever a new prompt\n\
         arrives; Sarathi fixes the freezes; POD-Attention recovers most of the first-token and\n\
         end-to-end latency Sarathi gave up (Tables 5-7 of the paper)."
    );
}
