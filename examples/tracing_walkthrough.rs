//! Request-lifecycle tracing walkthrough: the flight recorder, timeline
//! metrics and both exporters on a small disaggregated fleet.
//!
//! A prefill/decode fleet serves a bursty interactive trace with tracing
//! enabled. We dump the recording three ways — span-outcome tallies checked
//! against the report, a Chrome `trace_event` file for `chrome://tracing` /
//! Perfetto, and a compact JSONL excerpt — then rerun the same trace with a
//! tiny ring and a lifecycle-only filter to show the bounded-memory knobs.
//! Tracing off is the default and is bit-for-bit inert; everything below is
//! pure observation of a simulation that runs identically without it.
//!
//! Run with `cargo run --release --example tracing_walkthrough`.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, KvMigration, ModelConfig, RouterPolicy, ServingConfig, SloMix,
    TraceConfig, TraceFilter, Workload,
};

fn main() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let specs = SloMix::interactive_batch().apply(Workload::internal().generate(160, 9.0, 31), 31);

    // One prefill-only and one decode-only replica over an InfiniBand-class
    // link: every request's lifecycle crosses a migration, so the trace
    // shows enqueue -> admit -> handoff_export on one process and
    // handoff_import -> finish on another.
    let base = ServingConfig::sarathi_pod(model, gpu, 1024)
        .with_paged_kv(true)
        .with_tracing(
            TraceConfig::new()
                .with_capacity(1 << 20)
                .with_timeline_interval(2.0),
        );
    let mut cluster = Cluster::new(ClusterConfig::disaggregated(
        base.clone(),
        1,
        1,
        RouterPolicy::RoundRobin,
        KvMigration::infiniband(),
    ));
    let report = cluster.run(specs.clone());
    let recording = cluster.flight_recording().expect("tracing was enabled");

    // 1. Span fidelity: terminal events reconstruct the report's outcome
    //    counts exactly (the ring is large enough that nothing was
    //    overwritten).
    let outcomes = recording.span_outcomes();
    assert_eq!(outcomes.finished, report.aggregate.completed);
    assert_eq!(
        outcomes.migrated_out,
        report.aggregate.migrated_out_requests
    );
    println!(
        "recorded {} events across {} replicas ({} overwritten)",
        recording.event_count(),
        recording.replicas.len(),
        recording.dropped
    );
    println!(
        "span outcomes: {} finished, {} shed, {} migrated out / {} in — matches the report",
        outcomes.finished, outcomes.shed, outcomes.migrated_out, outcomes.migrated_in
    );

    // 2. The timeline summary: constant-memory distributions of batch
    //    occupancy and KV utilization sampled every 2 virtual seconds.
    let timeline = &recording.timeline;
    println!(
        "timeline: {} samples, batch occupancy p50 {:.0} / p99 {:.0}, kv util p99 {:.2}",
        timeline.samples,
        timeline.batch_occupancy.quantile(0.5),
        timeline.batch_occupancy.quantile(0.99),
        timeline.kv_utilization.quantile(0.99),
    );

    // 3. Exporters. The Chrome file opens in chrome://tracing or Perfetto:
    //    one process per replica, one span per request, iteration lane on
    //    tid 0, counter tracks from the timeline samples.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target");
    std::fs::create_dir_all(&dir).expect("create target dir");
    let chrome_path = dir.join("tracing_walkthrough_chrome.json");
    std::fs::write(&chrome_path, recording.to_chrome_json().to_string_compact())
        .expect("write chrome trace");
    println!("wrote {} (load in chrome://tracing)", chrome_path.display());

    let jsonl = recording.to_jsonl();
    println!("\nfirst five JSONL records (full-detail export):");
    for line in jsonl.lines().take(5) {
        println!("  {line}");
    }

    // 4. Flight-recorder knobs: a 256-event ring with a lifecycle-only
    //    filter retains just the most recent request outcomes — bounded
    //    memory however long the trace runs.
    let small = base.with_tracing(
        TraceConfig::new()
            .with_capacity(256)
            .with_filter(TraceFilter::lifecycle_only()),
    );
    let mut bounded = Cluster::new(ClusterConfig::disaggregated(
        small,
        1,
        1,
        RouterPolicy::RoundRobin,
        KvMigration::infiniband(),
    ));
    let bounded_report = bounded.run(specs);
    let bounded_rec = bounded.flight_recording().expect("tracing was enabled");
    println!(
        "\nbounded ring: {} events retained, {} overwritten (lifecycle only)",
        bounded_rec.event_count(),
        bounded_rec.dropped
    );
    // Tracing config never changes the simulation: same report either way.
    assert_eq!(bounded_report, report);
    println!("bounded-ring run produced the bit-identical report — tracing only observes");
}
