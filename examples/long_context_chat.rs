//! Long-context chat serving: how much does POD-Attention help as the
//! conversation (context) grows?
//!
//! This is the scenario the paper's introduction motivates: long-context
//! requests make attention the dominant cost of every hybrid-batching
//! iteration, so overlapping prefill and decode attention pays off most.
//!
//! Run with:
//! ```text
//! cargo run --release --example long_context_chat
//! ```

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
use fusion_lab::HybridAttentionRunner;
use gpu_sim::{GpuConfig, SimError};

fn main() -> Result<(), SimError> {
    let runner = HybridAttentionRunner::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
    let chunk = 1024;
    let decode_batch = 96;

    println!("Llama-3-8B (TP-2), chunk {chunk}, {decode_batch} concurrent decode streams");
    println!();
    println!(
        "{:>10} {:>14} {:>14} {:>14} {:>10}",
        "context", "FA serial (ms)", "FA streams (ms)", "POD (ms)", "speedup"
    );
    for context_kib in [2usize, 4, 8, 12, 16, 24, 32] {
        let context = context_kib * 1024;
        let batch = HybridBatch::uniform(chunk.min(context), context, decode_batch, context);
        let serial = runner.time(&batch, AttentionStrategy::FaSerial)?;
        let streams = runner.time(&batch, AttentionStrategy::FaStreams)?;
        let pod = runner.time(&batch, AttentionStrategy::Pod)?;
        println!(
            "{:>9}K {:>14.2} {:>14.2} {:>14.2} {:>9.2}x",
            context_kib,
            serial * 1e3,
            streams * 1e3,
            pod * 1e3,
            serial / pod
        );
    }
    println!();
    println!(
        "The longer the conversation, the more of each iteration is attention — and the more of\n\
         it POD-Attention can hide by overlapping the compute-bound chunk with the memory-bound\n\
         decodes."
    );
    Ok(())
}
