//! Golden snapshots of the report JSON **field sets**.
//!
//! `BENCH_engine.json` / `BENCH_cluster.json` / `BENCH_slo.json` feed the CI
//! perf gate by dotted path, so a serialization refactor that drops or
//! renames a metric breaks the gate *silently* — the gate only errors on the
//! specific paths it reads, long after the artifact shape drifted for every
//! other consumer. These tests pin the full path set of
//! [`ServingReport::to_json`] and [`ClusterReport::to_json`] against
//! committed snapshots and print a field-level diff on mismatch.
//!
//! When a change to the field set is *intentional*, regenerate with:
//!
//! ```text
//! POD_UPDATE_SNAPSHOTS=1 cargo test --test report_snapshots
//! ```
//!
//! and commit the updated files under `tests/snapshots/`.

use gpu_sim::GpuConfig;
use llm_serving::{
    AdmissionPolicy, AutoscalerConfig, Cluster, ClusterConfig, FairQueueConfig, FlightRecording,
    JsonValue, ModelConfig, Priority, RouterPolicy, ServingConfig, ServingEngine, SloMix, TenantId,
    TraceConfig, TraceEvent, TraceEventKind, TraceRecorder, Workload,
};
use std::path::PathBuf;

fn snapshot_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/snapshots")
        .join(name)
}

/// Compare `paths` against the committed snapshot, with a field-level diff
/// in the failure message (or rewrite the snapshot when
/// `POD_UPDATE_SNAPSHOTS=1`).
fn assert_matches_snapshot(name: &str, paths: &[String]) {
    let file = snapshot_path(name);
    let fresh = format!("{}\n", paths.join("\n"));
    if std::env::var("POD_UPDATE_SNAPSHOTS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(file.parent().expect("snapshot dir")).expect("mkdir snapshots");
        std::fs::write(&file, &fresh).expect("write snapshot");
        return;
    }
    let committed = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        panic!(
            "cannot read snapshot {}: {e}\n\
             (run with POD_UPDATE_SNAPSHOTS=1 to create it)",
            file.display()
        )
    });
    if committed == fresh {
        return;
    }
    let committed_set: std::collections::BTreeSet<&str> =
        committed.lines().filter(|l| !l.is_empty()).collect();
    let fresh_set: std::collections::BTreeSet<&str> =
        fresh.lines().filter(|l| !l.is_empty()).collect();
    let missing: Vec<&&str> = committed_set.difference(&fresh_set).collect();
    let added: Vec<&&str> = fresh_set.difference(&committed_set).collect();
    panic!(
        "report field set drifted from {}:\n\
         fields REMOVED (perf gate / trend consumers may break): {missing:?}\n\
         fields ADDED (fine, but must be committed): {added:?}\n\
         If intentional, regenerate with POD_UPDATE_SNAPSHOTS=1 and commit.",
        file.display()
    );
}

/// A serving run that populates every optional corner of the report: SLO
/// classes (met and violated), shedding, prefix caching, preemption, and
/// multi-tenant fair queueing (so the `tenants[]` rows carry real tallies).
fn full_featured_serving_report() -> llm_serving::ServingReport {
    let config = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024)
        .with_paged_kv(true)
        .with_admission(AdmissionPolicy::DeadlineShed)
        .with_fair_queue(FairQueueConfig::new().with_weight(TenantId(1), 2.0));
    let specs: Vec<_> = SloMix::interactive_batch()
        .apply(Workload::internal().generate(24, 4.0, 7), 7)
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.with_tenant(TenantId((i % 3) as u32)))
        .collect();
    ServingEngine::new(config).run(specs)
}

#[test]
fn serving_report_field_set_is_pinned() {
    let report = full_featured_serving_report();
    // Sanity: the run actually exercised the SLO block, so `slo.per_class[]`
    // paths are present in what we pin.
    assert!(report.slo_requests > 0);
    assert!(!report.slo_classes.is_empty());
    // Sanity: the multi-tenant run produced real per-tenant rows.
    assert!(report.tenants.len() > 1);
    assert_matches_snapshot("serving_report_fields.txt", &report.to_json().field_paths());
}

#[test]
fn cluster_report_field_set_is_pinned() {
    let config = ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024);
    let specs = SloMix::interactive_batch().apply(Workload::internal().generate(30, 5.0, 11), 11);
    let report = Cluster::new(
        ClusterConfig::new(config, 2, RouterPolicy::decode_aware())
            .with_autoscaler(AutoscalerConfig::new(1, 4)),
    )
    .run(specs);
    assert!(report.aggregate.slo_requests > 0);
    assert_matches_snapshot("cluster_report_fields.txt", &report.to_json().field_paths());
}

/// One event of every [`TraceEventKind`] variant, in a plausible lifecycle
/// order. Keep this list exhaustive when adding variants — it is what pins
/// the exporter schemas below.
fn one_of_every_trace_event() -> Vec<TraceEventKind> {
    vec![
        TraceEventKind::Enqueue {
            request: 0,
            tenant: TenantId(1),
            priority: Priority::High,
            prompt_tokens: 512,
            output_tokens: 64,
        },
        TraceEventKind::Defer { request: 0 },
        TraceEventKind::Admit {
            request: 0,
            cached_tokens: 128,
        },
        TraceEventKind::KvAlloc {
            request: 0,
            blocks: 4,
            reused: 2,
            cow: true,
        },
        TraceEventKind::Iteration {
            started_at: 0.5,
            duration: 0.25,
            hybrid: true,
            prefill_request: Some(0),
            chunk: 384,
            decodes: 3,
            prefill_tokens: 384,
            decode_tokens: 3,
            newly_finished: 1,
        },
        TraceEventKind::KvEvict { blocks: 2 },
        TraceEventKind::Preempt { request: 0 },
        TraceEventKind::HandoffExport {
            request: 0,
            tokens: 512,
            blocks: 4,
        },
        TraceEventKind::HandoffImport {
            request: 0,
            tokens: 512,
            stall: 0.03,
        },
        TraceEventKind::Shed { request: 1 },
        TraceEventKind::Finish {
            request: 0,
            prompt_tokens: 512,
            generated: 64,
            ttft: 0.8,
            latency: 2.5,
        },
        TraceEventKind::KvFree {
            request: 0,
            blocks: 4,
        },
        TraceEventKind::TimelineSample {
            running: 3,
            waiting: 1,
            kv_utilization: 0.5,
            prefill_tokens: 384,
            decode_tokens: 3,
            tenant_backlog: vec![(TenantId(1), 1)],
        },
        TraceEventKind::ScaleOut { replicas: 2 },
        TraceEventKind::ScaleIn { replica: 1 },
    ]
}

/// A synthetic recording covering every event kind: replica 0 carries the
/// request-level events, the cluster log the autoscaler actions.
fn full_coverage_recording() -> FlightRecording {
    let mut replica = TraceRecorder::new(TraceConfig::new());
    let mut cluster = TraceRecorder::new(TraceConfig::new());
    for (i, kind) in one_of_every_trace_event().into_iter().enumerate() {
        let t = i as f64 * 0.1;
        match kind.category() {
            llm_serving::TraceCategory::Autoscaler => cluster.record(t, kind),
            _ => replica.record(t, kind),
        }
    }
    let mut recording = FlightRecording::new();
    recording.push_replica(&replica);
    recording.set_cluster(&cluster);
    recording
}

/// The JSONL record schema (the flat `TraceEvent::to_json` shape) is pinned
/// over one event of every kind: a field rename breaks every downstream
/// trace consumer as silently as a report-field rename breaks the perf
/// gate.
#[test]
fn trace_event_field_set_is_pinned() {
    let events: Vec<JsonValue> = one_of_every_trace_event()
        .into_iter()
        .enumerate()
        .map(|(i, kind)| {
            TraceEvent {
                t: i as f64 * 0.1,
                kind,
            }
            .to_json()
        })
        .collect();
    let doc = JsonValue::obj(vec![("events", JsonValue::Arr(events))]);
    assert_matches_snapshot("trace_event_fields.txt", &doc.field_paths());
}

/// The Chrome `trace_event` export schema is pinned the same way — this is
/// the document `chrome://tracing` / Perfetto loads, so its shape is an
/// external contract.
#[test]
fn chrome_trace_field_set_is_pinned() {
    let doc = full_coverage_recording().to_chrome_json();
    assert_matches_snapshot("chrome_trace_fields.txt", &doc.field_paths());
}

/// The perf gate's exact dotted paths must stay readable from a fresh
/// report — the end-to-end property the snapshots exist to protect.
#[test]
fn perf_gate_paths_resolve_in_fresh_reports() {
    let report = full_featured_serving_report();
    let json = report.to_json();
    for path in [
        "requests_per_minute",
        "slo.goodput_per_minute",
        "slo.attainment",
        "ttft.p99",
        "tbt.p99",
    ] {
        assert!(
            json.get_path(path).and_then(|v| v.as_f64()).is_some(),
            "gated path '{path}' no longer resolves to a number"
        );
    }
}
