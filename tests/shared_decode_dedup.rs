//! Integration tests for prefix-shared decode attention (CoDec-style KV
//! dedup): bit-for-bit inertness when nothing is shared or the feature is
//! off, the strict decode-cost/TBT win on shared workloads, counter and
//! label surfacing, and grouping hygiene under preemption + eviction
//! pressure.

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ModelConfig, RouterPolicy, ServingConfig, ServingEngine, ServingReport,
    SharedPrefixWorkload, Workload,
};

fn llama3() -> ModelConfig {
    ModelConfig::llama3_8b()
}

fn gpu() -> GpuConfig {
    GpuConfig::a100_80gb()
}

fn sarathi() -> ServingConfig {
    ServingConfig::sarathi(llama3(), gpu(), 1024)
}

fn shared_workload(share_ratio: f64) -> SharedPrefixWorkload {
    SharedPrefixWorkload::new(Workload::internal(), 4, 2048, share_ratio, 0.35)
}

/// Scheduling-relevant fields must agree **bit-for-bit**. (The `system`
/// label legitimately differs — dedup-on configurations advertise
/// themselves — so whole-report equality is too strong here.)
fn assert_schedule_identical(tag: &str, a: &ServingReport, b: &ServingReport) {
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{tag}: makespan"
    );
    assert_eq!(a.completed, b.completed, "{tag}: completed");
    assert_eq!(a.iterations, b.iterations, "{tag}: iterations");
    assert_eq!(
        a.ttft.p50.to_bits(),
        b.ttft.p50.to_bits(),
        "{tag}: TTFT p50"
    );
    assert_eq!(
        a.tbt.mean.to_bits(),
        b.tbt.mean.to_bits(),
        "{tag}: TBT mean"
    );
    assert_eq!(a.tbt.max.to_bits(), b.tbt.max.to_bits(), "{tag}: TBT max");
    assert_eq!(a.busy_time.to_bits(), b.busy_time.to_bits(), "{tag}: busy");
    assert_eq!(
        a.prefill_tokens_scheduled, b.prefill_tokens_scheduled,
        "{tag}: prefill tokens"
    );
    assert_eq!(a.preemptions, b.preemptions, "{tag}: preemptions");
    assert_eq!(
        a.cached_prefix_tokens, b.cached_prefix_tokens,
        "{tag}: cached tokens"
    );
}

/// With share ratio 0 no two requests ever share a block, so turning dedup
/// on (co-batching hint, grouping pass, pricing plumbing and all) must not
/// move a single bit of the schedule.
#[test]
fn dedup_at_share_ratio_zero_is_bit_for_bit_inert() {
    let specs = shared_workload(0.0).generate(40, 0.9, 21);
    let base = sarathi().with_paged_kv(true);
    let on = ServingEngine::new(base.clone().with_decode_dedup(true)).run(specs.clone());
    let off = ServingEngine::new(base).run(specs);
    assert_schedule_identical("share0 dedup", &on, &off);
    assert_eq!(
        on.decode_kv_tokens_deduped, 0,
        "nothing to dedup at share 0"
    );
    assert_eq!(off.decode_kv_tokens_deduped, 0);
}

/// Under the conservative KV policy there is no block identity to group by;
/// requesting dedup is a no-op and the whole report — label included — is
/// identical.
#[test]
fn dedup_under_conservative_policy_is_fully_inert() {
    let specs = shared_workload(0.8).generate(32, 1.0, 7);
    let on = ServingEngine::new(sarathi().with_decode_dedup(true)).run(specs.clone());
    let off = ServingEngine::new(sarathi()).run(specs);
    assert_eq!(on, off, "conservative policy must ignore decode_dedup");
    assert_eq!(on.decode_kv_tokens_deduped, 0);
}

/// The headline win: on a high-share workload, eliding the redundant
/// shared-prefix KV reads strictly reduces makespan and mean TBT, for both
/// attention backends, without changing what completes.
#[test]
fn dedup_strictly_improves_decode_cost_and_tbt_on_shared_workloads() {
    let specs = shared_workload(0.9).generate(48, 1.2, 7);
    for base in [sarathi(), ServingConfig::sarathi_pod(llama3(), gpu(), 1024)] {
        let base = base.with_paged_kv(true);
        let on = ServingEngine::new(base.clone().with_decode_dedup(true)).run(specs.clone());
        let off = ServingEngine::new(base).run(specs.clone());
        assert_eq!(on.completed, 48, "{}", on.system);
        assert_eq!(off.completed, 48, "{}", off.system);
        assert!(
            on.decode_kv_tokens_deduped > 0,
            "{}: shared decodes must actually dedup",
            on.system
        );
        assert_eq!(off.decode_kv_tokens_deduped, 0);
        assert!(
            on.makespan < off.makespan,
            "{}: makespan {} must beat {}",
            on.system,
            on.makespan,
            off.makespan
        );
        assert!(
            on.tbt.mean < off.tbt.mean,
            "{}: mean TBT {} must beat {}",
            on.system,
            on.tbt.mean,
            off.tbt.mean
        );
    }
}

/// The configuration advertises itself and the counter reaches both the
/// report JSON and the cluster aggregate.
#[test]
fn dedup_label_and_counter_surface_in_reports() {
    let base = sarathi().with_paged_kv(true).with_decode_dedup(true);
    assert!(
        base.system_label().contains("+dedup"),
        "label: {}",
        base.system_label()
    );
    // Conservative + dedup: no "+dedup" claim for a feature that cannot act.
    assert!(!sarathi()
        .with_decode_dedup(true)
        .system_label()
        .contains("+dedup"));

    let specs = shared_workload(0.9).generate(32, 1.5, 13);
    let report = ServingEngine::new(base.clone()).run(specs.clone());
    assert!(report.decode_kv_tokens_deduped > 0);
    let json = report.to_json().to_string_pretty();
    let parsed = llm_serving::JsonValue::parse(&json).expect("report JSON parses");
    assert_eq!(
        parsed
            .get_path("decode_kv_tokens_deduped")
            .and_then(llm_serving::JsonValue::as_f64),
        Some(report.decode_kv_tokens_deduped as f64)
    );

    let fleet = Cluster::new(ClusterConfig::new(base, 2, RouterPolicy::PrefixAffinity)).run(specs);
    let summed: usize = fleet
        .per_replica
        .iter()
        .map(|r| r.decode_kv_tokens_deduped)
        .sum();
    assert_eq!(
        fleet.aggregate.decode_kv_tokens_deduped, summed,
        "aggregate must sum per-replica dedup counters"
    );
    assert!(summed > 0, "affinity-routed shared fleet must dedup");
}

/// Grouping hygiene under pressure: with a pool small enough to force
/// preemption and LRU eviction, dedup-on runs stay deterministic, complete
/// everything, and complete exactly what dedup-off completes — i.e. the
/// grouping state (block-chain keys into live tables) never leaks across
/// preempt/restore or eviction.
#[test]
fn dedup_grouping_survives_preemption_and_eviction_pressure() {
    for seed in [3u64, 17, 99] {
        let w = SharedPrefixWorkload::new(Workload::internal(), 3, 2048, 0.7, 0.4);
        let mut specs = w.generate(28, 1.5, seed);
        for s in &mut specs {
            s.arrival = 0.0; // offline pressure: everyone at once
        }
        let make = |dedup: bool| {
            let mut c = sarathi().with_paged_kv(true).with_decode_dedup(dedup);
            c.kv_capacity_tokens = Some(30_000);
            c
        };
        let a = ServingEngine::new(make(true)).run(specs.clone());
        let b = ServingEngine::new(make(true)).run(specs.clone());
        assert_eq!(a, b, "seed {seed}: dedup run must be deterministic");
        assert!(
            a.preemptions > 0,
            "seed {seed}: workload must actually exercise preemption"
        );
        let off = ServingEngine::new(make(false)).run(specs);
        assert_eq!(a.completed, off.completed, "seed {seed}");
        assert_eq!(a.completed, 28, "seed {seed}: everything drains");
    }
}
