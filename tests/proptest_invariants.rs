//! Property-based tests of the core invariants, across randomly generated
//! hybrid batches, workloads and scheduler states.

use attn_kernels::{
    AttentionConfig, AttentionEstimator, AttentionStrategy, DecodeKernel, HybridBatch,
    PrefillChunk, PrefillKernel,
};
use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass};
use llm_serving::{KvCacheManager, SummaryStats};
use pod_attention::{PodAttention, SchedulingPolicy, SmAwareScheduler};
use proptest::prelude::*;
use gpu_sim::CtaDispatcher;

fn arb_config() -> impl Strategy<Value = AttentionConfig> {
    prop_oneof![
        Just(AttentionConfig::yi_6b()),
        Just(AttentionConfig::llama2_7b()),
        Just(AttentionConfig::llama3_8b()),
    ]
}

fn arb_batch() -> impl Strategy<Value = HybridBatch> {
    (
        1usize..=2048,       // chunk length
        0usize..=16 * 1024,  // prior context
        0usize..=96,         // decode batch size
        64usize..=16 * 1024, // decode context
    )
        .prop_map(|(chunk, prior, decode_bs, decode_ctx)| HybridBatch {
            prefill: Some(PrefillChunk::new(chunk, prior)),
            decodes: vec![attn_kernels::DecodeRequest::new(decode_ctx); decode_bs],
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The engine conserves work: the report's total FLOPs/bytes equal the
    /// sum over the CTAs that were submitted.
    #[test]
    fn engine_conserves_work(
        n_ctas in 1usize..300,
        flops in 1.0e6f64..5.0e9,
        bytes in 1.0e3f64..5.0e7,
    ) {
        let gpu = GpuConfig::a100_80gb();
        let ctas = vec![CtaWork::single(OpClass::Other, flops, bytes); n_ctas];
        let report = Engine::new(gpu)
            .run_kernel(KernelLaunch::from_ctas("k", Footprint::new(128, 48 * 1024), ctas))
            .expect("kernel runs");
        let expected_flops = flops * n_ctas as f64;
        let expected_bytes = bytes * n_ctas as f64;
        prop_assert!((report.total_flops - expected_flops).abs() / expected_flops < 1e-6);
        prop_assert!((report.total_bytes - expected_bytes).abs() / expected_bytes < 1e-6);
        prop_assert!(report.makespan > 0.0);
        // Utilizations are physical fractions.
        prop_assert!(report.compute_utilization() <= 1.0 + 1e-9);
        prop_assert!(report.memory_utilization() <= 1.0 + 1e-9);
    }

    /// The kernel work-models scale monotonically: more context or more
    /// decodes never means less work.
    #[test]
    fn kernel_work_is_monotonic(cfg in arb_config(), context in 256usize..8192, extra in 1usize..4096) {
        let gpu = GpuConfig::a100_80gb();
        let prefill = PrefillKernel::flash_attention();
        let small = prefill.total_flops(&PrefillChunk::new(256, context), &cfg, &gpu);
        let large = prefill.total_flops(&PrefillChunk::new(256, context + extra), &cfg, &gpu);
        prop_assert!(large >= small);

        let decode = DecodeKernel::flash_attention();
        let few = vec![attn_kernels::DecodeRequest::new(context); 8];
        let many = vec![attn_kernels::DecodeRequest::new(context); 16];
        prop_assert!(
            decode.total_bytes(&many, &cfg, &gpu) > decode.total_bytes(&few, &cfg, &gpu)
        );
    }

    /// POD-Attention (almost) never loses to serial execution and never beats
    /// the perfect-overlap oracle (§5.1), for arbitrary hybrid batches.
    ///
    /// The bound is 0.75 rather than 1.0: in corner cases where the chunked
    /// prefill itself is memory-bound (Llama-2-7B's MHA at long context, whose
    /// per-GPU KV working set spills L2), there is no compute/memory
    /// complementarity to exploit and the simulated fused kernel can trail
    /// serial execution by up to ~15-20 %. This deviation from the paper's
    /// "never under-performs" claim is documented in EXPERIMENTS.md; on the
    /// paper's own sweep (Figure 11 harness) the worst case is ~-3 %.
    #[test]
    fn pod_bounded_by_serial_and_oracle(cfg in arb_config(), batch in arb_batch()) {
        let gpu = GpuConfig::a100_80gb();
        let pod = PodAttention::new(cfg, gpu);
        let speedup = pod.speedup_over_serial(&batch).expect("POD runs");
        prop_assert!(speedup >= 0.75, "POD slower than serial: {speedup}");
        let t = pod.attention_time(&batch).expect("POD runs");
        let oracle = pod.oracle_time(&batch);
        prop_assert!(t >= oracle * 0.98, "POD {t} beat the oracle {oracle}");
    }

    /// The closed-form estimator keeps the same invariant, and FA_Serial is
    /// always at least as slow as POD.
    #[test]
    fn estimator_orderings_hold(cfg in arb_config(), batch in arb_batch()) {
        let est = AttentionEstimator::new(cfg, GpuConfig::a100_80gb());
        let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
        let pod = est.estimate(&batch, AttentionStrategy::Pod);
        let streams = est.estimate(&batch, AttentionStrategy::FaStreams);
        prop_assert!(pod.total_time <= serial.total_time + 1e-12);
        prop_assert!(streams.total_time <= serial.total_time + 1e-12);
        prop_assert!(pod.total_time > 0.0);
        prop_assert!(serial.flops >= 0.0 && serial.bytes >= 0.0);
    }

    /// The SM-aware scheduler dispatches every CTA exactly once, never
    /// invents work, and co-locates both operations on every SM that receives
    /// enough CTAs — regardless of the (arbitrary) SM placement sequence.
    #[test]
    fn sm_aware_scheduler_dispatches_everything(
        prefill in 0usize..200,
        decode in 0usize..200,
        policy_is_prop in any::<bool>(),
        placement_seed in any::<u64>(),
    ) {
        prop_assume!(prefill + decode > 0);
        let policy = if policy_is_prop {
            SchedulingPolicy::Proportional
        } else {
            SchedulingPolicy::FiftyFifty
        };
        let (pr, dr) = policy.ratios(prefill, decode);
        let num_sms = 16;
        let mut sched = SmAwareScheduler::new(
            vec![CtaWork::single(OpClass::Prefill, 1.0, 1.0); prefill],
            vec![CtaWork::single(OpClass::Decode, 1.0, 1.0); decode],
            num_sms,
            pr,
            dr,
        );
        let mut seen_prefill = 0usize;
        let mut seen_decode = 0usize;
        let mut state = placement_seed;
        for _ in 0..(prefill + decode) {
            // Cheap deterministic pseudo-random SM choice.
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let sm = (state >> 33) as usize % num_sms;
            match sched.dispatch(sm).dominant_op() {
                OpClass::Prefill => seen_prefill += 1,
                OpClass::Decode => seen_decode += 1,
                _ => prop_assert!(false, "unexpected op class"),
            }
        }
        prop_assert_eq!(seen_prefill, prefill);
        prop_assert_eq!(seen_decode, decode);
        prop_assert_eq!(sched.remaining(), 0);
    }

    /// The KV-cache manager never over-commits and reserve/release round
    /// trips restore the free space exactly.
    #[test]
    fn kv_cache_never_overcommits(ops in prop::collection::vec((1usize..4096, any::<bool>()), 1..64)) {
        let capacity = 64 * 1024;
        let mut kv = KvCacheManager::new(capacity);
        let mut live: Vec<usize> = Vec::new();
        for (tokens, release_first) in ops {
            if release_first && !live.is_empty() {
                let t = live.pop().expect("non-empty");
                kv.release(t);
            }
            if kv.reserve(tokens) {
                live.push(tokens);
            }
            prop_assert!(kv.used_tokens() <= kv.capacity_tokens());
        }
        for t in live.drain(..) {
            kv.release(t);
        }
        prop_assert_eq!(kv.used_tokens(), 0);
    }

    /// Percentile summaries are ordered and bounded by the sample range.
    #[test]
    fn summary_stats_are_ordered(samples in prop::collection::vec(0.0f64..1e4, 1..200)) {
        let s = SummaryStats::from_samples(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!(s.p50 <= s.p99 + 1e-9);
        prop_assert!(s.p99 <= s.max + 1e-9);
        prop_assert!(s.max <= samples.iter().cloned().fold(0.0, f64::max) + 1e-9);
        prop_assert!(s.mean >= min - 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert_eq!(s.count, samples.len());
    }
}
