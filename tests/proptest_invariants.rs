//! Property-based tests of the core invariants, across randomly generated
//! hybrid batches, workloads and scheduler states.
//!
//! The build environment has no access to crates.io, so instead of the
//! `proptest` crate these properties run over cases drawn from the repo's own
//! deterministic [`SplitMix64`] generator: same shrink-free spirit, fixed
//! seeds, and every failure message carries the generated case.

use attn_kernels::{
    AttentionConfig, AttentionEstimator, AttentionStrategy, DecodeKernel, HybridBatch,
    PrefillChunk, PrefillKernel,
};
use gpu_sim::CtaDispatcher;
use gpu_sim::{CtaWork, Engine, Footprint, GpuConfig, KernelLaunch, OpClass};
use llm_serving::{
    offline_long_context, KvCacheManager, ModelConfig, ServingConfig, ServingEngine, SplitMix64,
    SummaryStats, Workload,
};
use pod_attention::{PodAttention, SchedulingPolicy, SmAwareScheduler};

/// Number of random cases per property (kept close to the old
/// `ProptestConfig::with_cases(24)` budget).
const CASES: usize = 24;

fn configs() -> [AttentionConfig; 3] {
    [
        AttentionConfig::yi_6b(),
        AttentionConfig::llama2_7b(),
        AttentionConfig::llama3_8b(),
    ]
}

fn arb_config(rng: &mut SplitMix64) -> AttentionConfig {
    configs()[rng.next_usize(3)]
}

fn arb_batch(rng: &mut SplitMix64) -> HybridBatch {
    let chunk = 1 + rng.next_usize(2048);
    let prior = rng.next_usize(16 * 1024 + 1);
    let decode_bs = rng.next_usize(97);
    let decode_ctx = 64 + rng.next_usize(16 * 1024 - 63);
    // Half the cases declare shared-prefix KV dedup; the descriptor contract
    // clamps over-declared sharing to the redundant share, so any value is
    // legal here — including declarations on empty decode sides.
    let kv_dedup_tokens = if rng.next_f64() < 0.5 {
        rng.next_usize(decode_bs.max(1) * decode_ctx)
    } else {
        0
    };
    // Half the cases carry speculative-verify query tokens (up to 7 extra
    // per decode, the k-1 of a k<=8 draft round).
    let spec_verify_tokens = if rng.next_f64() < 0.5 {
        rng.next_usize(decode_bs * 7 + 1)
    } else {
        0
    };
    HybridBatch {
        prefill: Some(PrefillChunk::new(chunk, prior)),
        decodes: vec![attn_kernels::DecodeRequest::new(decode_ctx); decode_bs],
        kv_dedup_tokens,
        spec_verify_tokens,
    }
}

/// The engine conserves work: the report's total FLOPs/bytes equal the sum
/// over the CTAs that were submitted, within `WORK_EPS`-scale tolerance.
#[test]
fn engine_conserves_work() {
    let mut rng = SplitMix64::seed_from_u64(0xC0FFEE);
    let gpu = GpuConfig::a100_80gb();
    for case in 0..CASES {
        let n_ctas = 1 + rng.next_usize(299);
        let flops = 1.0e6 + rng.next_f64() * 5.0e9;
        let bytes = 1.0e3 + rng.next_f64() * 5.0e7;
        let ctas = vec![CtaWork::single(OpClass::Other, flops, bytes); n_ctas];
        let report = Engine::new(gpu.clone())
            .run_kernel(KernelLaunch::from_ctas(
                "k",
                Footprint::new(128, 48 * 1024),
                ctas,
            ))
            .expect("kernel runs");
        let expected_flops = flops * n_ctas as f64;
        let expected_bytes = bytes * n_ctas as f64;
        assert!(
            (report.total_flops - expected_flops).abs() / expected_flops < 1e-6,
            "case {case} (n={n_ctas}, flops={flops}): {} vs {expected_flops}",
            report.total_flops
        );
        assert!(
            (report.total_bytes - expected_bytes).abs() / expected_bytes < 1e-6,
            "case {case} (n={n_ctas}, bytes={bytes}): {} vs {expected_bytes}",
            report.total_bytes
        );
        assert!(report.makespan > 0.0, "case {case}: empty makespan");
        assert!(report.intervals > 0, "case {case}: no intervals");
        // Utilizations are physical fractions.
        assert!(report.compute_utilization() <= 1.0 + 1e-9, "case {case}");
        assert!(report.memory_utilization() <= 1.0 + 1e-9, "case {case}");
    }
}

/// The kernel work-models scale monotonically: more context or more decodes
/// never means less work.
#[test]
fn kernel_work_is_monotonic() {
    let mut rng = SplitMix64::seed_from_u64(42);
    let gpu = GpuConfig::a100_80gb();
    for case in 0..CASES {
        let cfg = arb_config(&mut rng);
        let context = 256 + rng.next_usize(8192 - 256);
        let extra = 1 + rng.next_usize(4095);
        let prefill = PrefillKernel::flash_attention();
        let small = prefill.total_flops(&PrefillChunk::new(256, context), &cfg, &gpu);
        let large = prefill.total_flops(&PrefillChunk::new(256, context + extra), &cfg, &gpu);
        assert!(
            large >= small,
            "case {case}: ctx {context} (+{extra}): {large} < {small}"
        );

        let decode = DecodeKernel::flash_attention();
        let few = vec![attn_kernels::DecodeRequest::new(context); 8];
        let many = vec![attn_kernels::DecodeRequest::new(context); 16];
        assert!(
            decode.total_bytes(&many, &cfg, &gpu) > decode.total_bytes(&few, &cfg, &gpu),
            "case {case}: decode bytes not monotonic at ctx {context}"
        );
    }
}

/// POD-Attention (almost) never loses to serial execution and never beats
/// the perfect-overlap oracle (§5.1), for arbitrary hybrid batches.
///
/// The bound is 0.75 rather than 1.0: in corner cases where the chunked
/// prefill itself is memory-bound (Llama-2-7B's MHA at long context, whose
/// per-GPU KV working set spills L2), there is no compute/memory
/// complementarity to exploit and the simulated fused kernel can trail
/// serial execution by up to ~15-20 %. On the paper's own sweep (Figure 11
/// harness) the worst case is ~-3 %.
#[test]
fn pod_bounded_by_serial_and_oracle() {
    let mut rng = SplitMix64::seed_from_u64(7);
    let gpu = GpuConfig::a100_80gb();
    for case in 0..CASES {
        let cfg = arb_config(&mut rng);
        let batch = arb_batch(&mut rng);
        let pod = PodAttention::new(cfg, gpu.clone());
        let speedup = pod.speedup_over_serial(&batch).expect("POD runs");
        assert!(
            speedup >= 0.75,
            "case {case} ({batch:?}): POD slower than serial: {speedup}"
        );
        let t = pod.attention_time(&batch).expect("POD runs");
        let oracle = pod.oracle_time(&batch);
        assert!(
            t >= oracle * 0.98,
            "case {case}: POD {t} beat the oracle {oracle}"
        );
    }
}

/// The closed-form estimator keeps the same invariant, and FA_Serial is
/// always at least as slow as POD — with memoization on and off.
#[test]
fn estimator_orderings_hold() {
    let mut rng = SplitMix64::seed_from_u64(11);
    for case in 0..CASES {
        let cfg = arb_config(&mut rng);
        let batch = arb_batch(&mut rng);
        for est in [
            AttentionEstimator::new(cfg, GpuConfig::a100_80gb()),
            AttentionEstimator::exact(cfg, GpuConfig::a100_80gb()),
        ] {
            let serial = est.estimate(&batch, AttentionStrategy::FaSerial);
            let pod = est.estimate(&batch, AttentionStrategy::Pod);
            let streams = est.estimate(&batch, AttentionStrategy::FaStreams);
            let memo = est.is_memoized();
            assert!(
                pod.total_time <= serial.total_time + 1e-12,
                "case {case} (memo={memo}): pod {} > serial {}",
                pod.total_time,
                serial.total_time
            );
            assert!(
                streams.total_time <= serial.total_time + 1e-12,
                "case {case} (memo={memo})"
            );
            assert!(pod.total_time > 0.0, "case {case} (memo={memo})");
            assert!(serial.flops >= 0.0 && serial.bytes >= 0.0, "case {case}");
        }
    }
}

/// The SM-aware scheduler dispatches every CTA exactly once and never
/// invents work — regardless of the (arbitrary) SM placement sequence — and
/// its executed-op counts account for every dispatch.
#[test]
fn sm_aware_scheduler_dispatches_everything() {
    let mut rng = SplitMix64::seed_from_u64(23);
    for case in 0..CASES {
        let prefill = rng.next_usize(200);
        let decode = rng.next_usize(200);
        if prefill + decode == 0 {
            continue;
        }
        let policy = if rng.next_f64() < 0.5 {
            SchedulingPolicy::Proportional
        } else {
            SchedulingPolicy::FiftyFifty
        };
        let (pr, dr) = policy.ratios(prefill, decode);
        let num_sms = 16;
        let mut sched = SmAwareScheduler::new(
            vec![CtaWork::single(OpClass::Prefill, 1.0, 1.0); prefill],
            vec![CtaWork::single(OpClass::Decode, 1.0, 1.0); decode],
            num_sms,
            pr,
            dr,
        );
        let mut seen_prefill = 0usize;
        let mut seen_decode = 0usize;
        for _ in 0..(prefill + decode) {
            let sm = rng.next_usize(num_sms);
            match sched.dispatch(sm).dominant_op() {
                OpClass::Prefill => seen_prefill += 1,
                OpClass::Decode => seen_decode += 1,
                other => panic!("case {case}: unexpected op class {other}"),
            }
        }
        assert_eq!(seen_prefill, prefill, "case {case} ({policy:?})");
        assert_eq!(seen_decode, decode, "case {case} ({policy:?})");
        assert_eq!(sched.remaining(), 0, "case {case}: work left over");
        let (count_p, count_d) = sched
            .bound_counts()
            .iter()
            .fold((0, 0), |(p, d), &(cp, cd)| (p + cp, d + cd));
        assert_eq!(
            (count_p, count_d),
            (prefill, decode),
            "case {case}: counts disagree"
        );
    }
}

/// Serving with the batch-price cache on agrees with exact pricing within
/// the quantization tolerance, for random workloads and all three system
/// configurations — and completes the same requests.
#[test]
fn cached_serving_tracks_exact_serving() {
    let mut rng = SplitMix64::seed_from_u64(31);
    let gpu = GpuConfig::a100_80gb();
    for case in 0..6 {
        let model = match rng.next_usize(3) {
            0 => ModelConfig::yi_6b(),
            1 => ModelConfig::llama2_7b(),
            _ => ModelConfig::llama3_8b(),
        };
        let requests = if rng.next_f64() < 0.5 {
            offline_long_context(
                8 + rng.next_usize(8),
                4 * 1024 + rng.next_usize(8 * 1024),
                64,
            )
        } else {
            Workload::internal().generate(16, 0.5 + rng.next_f64(), rng.next_u64())
        };
        let chunk = 512 << rng.next_usize(2);
        let mut config = match rng.next_usize(3) {
            0 => ServingConfig::vllm(model, gpu.clone()),
            1 => ServingConfig::sarathi(model, gpu.clone(), chunk),
            _ => ServingConfig::sarathi_pod(model, gpu.clone(), chunk),
        };
        config.price_cache = true;
        let mut exact_config = config.clone();
        exact_config.price_cache = false;
        let cached = ServingEngine::new(config).run(requests.clone());
        let exact = ServingEngine::new(exact_config).run(requests);
        assert_eq!(
            cached.completed, exact.completed,
            "case {case} ({})",
            cached.system
        );
        // Quantized prices shift the clock slightly, which can move an
        // arrival across an iteration boundary — allow a whisker of drift.
        assert!(
            (cached.iterations as i64 - exact.iterations as i64).unsigned_abs() as usize
                <= 1 + exact.iterations / 100,
            "case {case} ({}): {} vs {} iterations",
            cached.system,
            cached.iterations,
            exact.iterations
        );
        assert_eq!(
            cached.price_cache_hits + cached.price_cache_misses,
            cached.iterations,
            "case {case}: every iteration is a hit or a miss"
        );
        assert_eq!(
            exact.price_cache_hits + exact.price_cache_misses,
            0,
            "case {case}"
        );
        let rel = (cached.makespan - exact.makespan).abs() / exact.makespan.max(1e-12);
        assert!(
            rel < 0.02,
            "case {case} ({}): cached makespan {} vs exact {} ({:.3}% off)",
            cached.system,
            cached.makespan,
            exact.makespan,
            rel * 100.0
        );
    }
}

/// The KV-cache manager never over-commits and reserve/release round trips
/// restore the free space exactly.
#[test]
fn kv_cache_never_overcommits() {
    let mut rng = SplitMix64::seed_from_u64(57);
    for case in 0..CASES {
        let capacity = 64 * 1024;
        let mut kv = KvCacheManager::new(capacity);
        let mut live: Vec<usize> = Vec::new();
        let ops = 1 + rng.next_usize(63);
        for _ in 0..ops {
            let tokens = 1 + rng.next_usize(4095);
            if rng.next_f64() < 0.5 && !live.is_empty() {
                let t = live.pop().expect("non-empty");
                kv.release(t);
            }
            if kv.reserve(tokens) {
                live.push(tokens);
            }
            assert!(
                kv.used_tokens() <= kv.capacity_tokens(),
                "case {case}: overcommitted"
            );
        }
        for t in live.drain(..) {
            kv.release(t);
        }
        assert_eq!(kv.used_tokens(), 0, "case {case}: leaked reservations");
    }
}

/// Percentile summaries are ordered and bounded by the sample range.
#[test]
fn summary_stats_are_ordered() {
    let mut rng = SplitMix64::seed_from_u64(99);
    for case in 0..CASES {
        let n = 1 + rng.next_usize(199);
        let samples: Vec<f64> = (0..n).map(|_| rng.next_f64() * 1e4).collect();
        let s = SummaryStats::from_samples(&samples);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(s.p50 <= s.p99 + 1e-9, "case {case}");
        assert!(s.p99 <= s.max + 1e-9, "case {case}");
        assert!(s.max <= max + 1e-9, "case {case}");
        assert!(
            s.mean >= min - 1e-9 && s.mean <= s.max + 1e-9,
            "case {case}"
        );
        assert_eq!(s.count, samples.len(), "case {case}");
    }
}
