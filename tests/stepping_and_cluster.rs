//! Regression and determinism tests for the step-able engine and the cluster
//! layer.
//!
//! The golden bit patterns below were captured from the pre-stepping,
//! closed-world `ServingEngine::run` (the monolithic loop that predated
//! `step`). `run` is now implemented on top of `step`, and these tests pin
//! it to the old behavior **bit-for-bit** — not within a tolerance.

use gpu_sim::GpuConfig;
use llm_serving::{
    offline_long_context, Cluster, ClusterConfig, IterationOutcome, ModelConfig, RateSchedule,
    RouterPolicy, ServingConfig, ServingEngine, ServingReport, Workload,
};

fn llama3() -> ModelConfig {
    ModelConfig::llama3_8b()
}

fn gpu() -> GpuConfig {
    GpuConfig::a100_80gb()
}

/// Golden field values as `f64::to_bits` patterns plus exact counters.
struct Golden {
    makespan: u64,
    completed: usize,
    iterations: usize,
    hybrid: usize,
    ttft_p50: u64,
    ttft_p99: u64,
    tbt_p50: u64,
    tbt_max: u64,
    lat_p50: u64,
    stall200: u64,
    hits: usize,
    misses: usize,
}

fn assert_matches_golden(tag: &str, r: &ServingReport, g: &Golden) {
    assert_eq!(r.makespan.to_bits(), g.makespan, "{tag}: makespan");
    assert_eq!(r.completed, g.completed, "{tag}: completed");
    assert_eq!(r.iterations, g.iterations, "{tag}: iterations");
    assert_eq!(r.hybrid_iterations, g.hybrid, "{tag}: hybrid iterations");
    assert_eq!(r.ttft.p50.to_bits(), g.ttft_p50, "{tag}: TTFT p50");
    assert_eq!(r.ttft.p99.to_bits(), g.ttft_p99, "{tag}: TTFT p99");
    assert_eq!(r.tbt.p50.to_bits(), g.tbt_p50, "{tag}: TBT p50");
    assert_eq!(r.tbt.max.to_bits(), g.tbt_max, "{tag}: TBT max");
    assert_eq!(
        r.request_latency.p50.to_bits(),
        g.lat_p50,
        "{tag}: latency p50"
    );
    assert_eq!(
        r.stall_fraction_200ms.to_bits(),
        g.stall200,
        "{tag}: stall fraction"
    );
    assert_eq!(r.price_cache_hits, g.hits, "{tag}: cache hits");
    assert_eq!(r.price_cache_misses, g.misses, "{tag}: cache misses");
}

/// `run()` (now a loop over `step`) reproduces the pre-refactor closed-world
/// engine bit-for-bit on an online Sarathi+POD workload.
#[test]
fn run_reproduces_pre_stepping_reports_bit_for_bit() {
    let online = Workload::internal().generate(40, 0.8, 17);
    let offline = offline_long_context(16, 8 * 1024, 128);

    let pod =
        ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024)).run(online.clone());
    assert_matches_golden(
        "sarathi_pod_online",
        &pod,
        &Golden {
            makespan: 4634273427453257495,
            completed: 40,
            iterations: 5907,
            hybrid: 417,
            ttft_p50: 4602988723638504496,
            ttft_p99: 4609199801803860468,
            tbt_p50: 4575574502164525056,
            tbt_max: 4589340709345344256,
            lat_p50: 4614310424491164702,
            stall200: 0,
            hits: 5397,
            misses: 510,
        },
    );

    let sarathi = ServingEngine::new(ServingConfig::sarathi(llama3(), gpu(), 1024)).run(offline);
    assert_matches_golden(
        "sarathi_offline",
        &sarathi,
        &Golden {
            makespan: 4619641717820506628,
            completed: 16,
            iterations: 270,
            hybrid: 135,
            ttft_p50: 4614167509303138966,
            ttft_p99: 4618387286776373393,
            tbt_p50: 4578181879319054848,
            tbt_max: 4587707149233108736,
            lat_p50: 4619086305298313794,
            stall200: 0,
            hits: 118,
            misses: 152,
        },
    );

    let vllm = ServingEngine::new(ServingConfig::vllm(llama3(), gpu())).run(online);
    assert_matches_golden(
        "vllm_online",
        &vllm,
        &Golden {
            makespan: 4634281936496695202,
            completed: 40,
            iterations: 5555,
            hybrid: 0,
            ttft_p50: 4602566335034308640,
            ttft_p99: 4608898658765648423,
            tbt_p50: 4575480349117739008,
            tbt_max: 4611104788700718688,
            lat_p50: 4615029678595120562,
            stall200: 4604705439004963635,
            hits: 5426,
            misses: 129,
        },
    );
}

/// Driving `step()` by hand produces a report identical to `run()` — same
/// clocks, same percentiles, same cache counters.
#[test]
fn manual_stepping_matches_run_exactly() {
    for specs in [
        Workload::internal().generate(32, 1.0, 42),
        offline_long_context(12, 4 * 1024, 64),
    ] {
        let engine = ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024));
        let from_run = engine.run(specs.clone());

        let mut stepped = ServingEngine::new(ServingConfig::sarathi_pod(llama3(), gpu(), 1024));
        for spec in specs {
            stepped.submit(spec);
        }
        let mut now = 0.0;
        let mut ran = 0usize;
        loop {
            match stepped.step(now) {
                IterationOutcome::Ran(stats) => {
                    assert!(stats.duration > 0.0);
                    assert_eq!(stats.completed_at, stepped.clock());
                    ran += 1;
                    now = stats.completed_at;
                }
                IterationOutcome::IdleUntil(t) => {
                    assert!(t > now, "idle time must move forward");
                    now = t;
                }
                IterationOutcome::Drained => break,
                IterationOutcome::Blocked { .. } => panic!("workload fits, must not block"),
            }
        }
        assert!(stepped.is_drained());
        assert_eq!(ran, from_run.iterations);
        assert_eq!(stepped.report(), from_run);
    }
}

/// Same seed ⇒ identical trace ⇒ identical engine and cluster reports, run
/// after run.
#[test]
fn same_seed_is_deterministic_end_to_end() {
    let schedule = RateSchedule::bursty(0.4, 5.0, 30.0, 8.0);
    let trace_a = Workload::arxiv().generate_trace(40, &schedule, 1234);
    let trace_b = Workload::arxiv().generate_trace(40, &schedule, 1234);
    assert_eq!(
        trace_a, trace_b,
        "trace generation must be seed-deterministic"
    );

    let config = ServingConfig::sarathi_pod(llama3(), gpu(), 1024);
    let r1 = ServingEngine::new(config.clone()).run(trace_a.clone());
    let r2 = ServingEngine::new(config.clone()).run(trace_b.clone());
    assert_eq!(r1, r2);

    let c1 = Cluster::new(ClusterConfig::new(
        config.clone(),
        3,
        RouterPolicy::decode_aware(),
    ))
    .run(trace_a);
    let c2 = Cluster::new(ClusterConfig::new(config, 3, RouterPolicy::decode_aware())).run(trace_b);
    assert_eq!(c1, c2);
}

/// A fleet of one replica behind any router is exactly the single engine.
#[test]
fn one_replica_cluster_is_the_engine() {
    let specs = Workload::internal().generate(20, 1.0, 7);
    let config = ServingConfig::sarathi(llama3(), gpu(), 1024);
    let plain = ServingEngine::new(config.clone()).run(specs.clone());
    let cluster = Cluster::new(ClusterConfig::new(config, 1, RouterPolicy::RoundRobin)).run(specs);
    assert_eq!(cluster.per_replica[0], plain);
    assert_eq!(
        cluster.aggregate.makespan.to_bits(),
        plain.makespan.to_bits()
    );
}

/// POD keeps its single-GPU win at every fleet size: Sarathi+POD completes
/// the same bursty trace no slower than Sarathi per replica count.
#[test]
fn pod_advantage_survives_scaling_out() {
    let schedule = RateSchedule::bursty(0.5, 4.0, 30.0, 10.0);
    let trace = Workload::internal().generate_trace(36, &schedule, 5);
    for replicas in [1usize, 2, 4] {
        let sarathi = Cluster::new(ClusterConfig::new(
            ServingConfig::sarathi(llama3(), gpu(), 1024),
            replicas,
            RouterPolicy::decode_aware(),
        ))
        .run(trace.clone());
        let pod = Cluster::new(ClusterConfig::new(
            ServingConfig::sarathi_pod(llama3(), gpu(), 1024),
            replicas,
            RouterPolicy::decode_aware(),
        ))
        .run(trace.clone());
        assert_eq!(pod.aggregate.completed, 36);
        // Makespan under online arrivals is dominated by the arrival span, so
        // allow 1% routing noise there; the mean latency win must be strict.
        assert!(
            pod.aggregate.makespan <= sarathi.aggregate.makespan * 1.01,
            "{replicas} replicas: POD makespan {} vs Sarathi {}",
            pod.aggregate.makespan,
            sarathi.aggregate.makespan
        );
        assert!(
            pod.aggregate.request_latency.mean < sarathi.aggregate.request_latency.mean,
            "{replicas} replicas: POD mean latency {} vs Sarathi {}",
            pod.aggregate.request_latency.mean,
            sarathi.aggregate.request_latency.mean
        );
    }
}
