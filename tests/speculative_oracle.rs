//! Speculative-decode oracle: in its degenerate corners the speculative
//! engine must be **indistinguishable** from plain autoregressive decode.
//!
//! Corner one: `k = 1`, acceptance 1.0, zero-cost draft. A one-deep draft
//! round drafts exactly the one token autoregressive decode would mint, the
//! verifier accepts it, the draft model costs nothing and a width-1 verify
//! adds zero extra query tokens — so every iteration must be bit-for-bit the
//! autoregressive iteration. Any divergence is speculative drift: the spec
//! path changed a schedule or a price it had no speculation to justify
//! changing.
//!
//! Corner two: acceptance 0.0 at any depth. Every draft is rejected and each
//! round nets exactly its one mandatory bonus token — autoregressive
//! progress at speculative prices. The round count must equal the decode
//! token count exactly.

use gpu_sim::GpuConfig;
use llm_serving::{
    offline_long_context, AcceptanceModel, DraftModelConfig, IterationOutcome, ModelConfig,
    RequestSpec, ServingConfig, ServingEngine, Workload,
};

fn base_config(chunk: usize) -> ServingConfig {
    ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), chunk)
}

/// Drive the autoregressive engine and the degenerate speculative engine to
/// drain in lockstep, asserting identical [`IterationOutcome`] sequences,
/// then identical reports up to the `"+spec"` label and the speculative
/// counters (which count rounds the autoregressive engine never runs).
fn assert_lockstep_identical(tag: &str, specs: Vec<RequestSpec>, chunk: usize) {
    let ar_cfg = base_config(chunk);
    let spec_cfg = base_config(chunk).with_speculative(
        1,
        DraftModelConfig::free(),
        AcceptanceModel::new(1.0, 42),
    );
    let mut ar = ServingEngine::new(ar_cfg);
    let mut spec = ServingEngine::new(spec_cfg);
    for s in &specs {
        ar.submit(*s);
        spec.submit(*s);
    }
    let mut now = 0.0;
    let mut steps = 0usize;
    loop {
        let a = ar.step(now);
        let b = spec.step(now);
        assert_eq!(
            a, b,
            "{tag}: outcome diverged at step {steps} (now = {now})"
        );
        steps += 1;
        match a {
            IterationOutcome::Ran(stats) => now = stats.completed_at,
            IterationOutcome::IdleUntil(t) => now = t,
            IterationOutcome::Drained => break,
            IterationOutcome::Blocked { .. } => {
                panic!("{tag}: ample-memory workload must never block")
            }
        }
    }
    let ra = ar.report();
    let mut rb = spec.report();
    assert_eq!(format!("{}+spec", ra.system), rb.system, "{tag}: labels");
    // The degenerate round still counts as a round: one per decode token,
    // every drafted token accepted, none rejected.
    assert!(rb.spec_rounds > 0, "{tag}: speculation must actually run");
    assert_eq!(rb.draft_tokens_accepted, rb.spec_rounds, "{tag}");
    assert_eq!(rb.draft_tokens_rejected, 0, "{tag}");
    rb.system = ra.system.clone();
    rb.spec_rounds = 0;
    rb.draft_tokens_accepted = 0;
    assert_eq!(ra, rb, "{tag}: final reports diverged");
    // Token-level identity, not just aggregate identity: every token of
    // every request minted at the same virtual instant.
    for (want, got) in ar.requests().iter().zip(spec.requests()) {
        assert_eq!(
            want.token_times, got.token_times,
            "{tag}: token times diverged for request {}",
            want.id
        );
    }
}

#[test]
fn k1_full_acceptance_free_draft_is_lockstep_autoregressive() {
    for seed in [3, 17, 91] {
        let specs = Workload::internal().generate(32, 1.2, seed);
        assert_lockstep_identical(&format!("internal/seed{seed}"), specs, 1024);
    }
    let specs = Workload::arxiv().generate(24, 0.8, 7);
    assert_lockstep_identical("arxiv", specs, 512);
}

#[test]
fn k1_full_acceptance_is_lockstep_on_offline_batches() {
    assert_lockstep_identical("offline", offline_long_context(16, 8 * 1024, 128), 1024);
}

/// Acceptance 0.0: every round nets exactly one token, so the round count
/// equals the decode-token count — `sum(output - 1)` over the workload (the
/// first token of each request is minted at prefill completion) — at every
/// draft depth, over seeded sweeps.
#[test]
fn zero_acceptance_nets_one_token_per_round_at_every_depth() {
    for seed in [5, 23, 77] {
        let specs = Workload::internal().generate(24, 1.0, seed);
        let decode_tokens: usize = specs.iter().map(|s| s.output_tokens - 1).sum();
        for k in [2usize, 4, 8] {
            let report = ServingEngine::new(base_config(1024).with_speculative(
                k,
                DraftModelConfig::scaled(0.25),
                AcceptanceModel::new(0.0, seed),
            ))
            .run(specs.clone());
            assert_eq!(report.completed, 24, "seed {seed} k {k}");
            assert_eq!(
                report.preemptions, 0,
                "seed {seed} k {k}: the arithmetic below assumes no recompute"
            );
            assert_eq!(
                report.spec_rounds, decode_tokens,
                "seed {seed} k {k}: one net token per round"
            );
            assert_eq!(report.draft_tokens_accepted, 0, "seed {seed} k {k}");
            // Every drafted-but-not-mandatory token was rejected: each round
            // drafts `width` tokens and keeps exactly one.
            assert!(report.draft_tokens_rejected > 0, "seed {seed} k {k}");
        }
    }
}

/// The oracle is only an oracle where its preconditions hold: away from the
/// degenerate corner (k > 1, real acceptance, priced draft) the speculative
/// engine must genuinely diverge from autoregressive decode. Guards the
/// lockstep tests against becoming vacuous.
#[test]
fn speculation_does_diverge_away_from_the_degenerate_corner() {
    let specs = Workload::internal().generate(24, 1.2, 17);
    let ar = ServingEngine::new(base_config(1024)).run(specs.clone());
    let spec = ServingEngine::new(base_config(1024).with_speculative(
        4,
        DraftModelConfig::scaled(0.25),
        AcceptanceModel::new(0.8, 17),
    ))
    .run(specs);
    assert_eq!(spec.completed, ar.completed);
    assert_ne!(
        spec.makespan.to_bits(),
        ar.makespan.to_bits(),
        "k=4 speculation at acceptance 0.8 must change the schedule — if it \
         does not, the lockstep tests above are testing nothing"
    );
}
