//! Cross-crate integration tests: the paper's headline claims, checked from
//! the kernel level all the way up to the serving stack.

use attn_kernels::{AttentionConfig, AttentionStrategy, HybridBatch};
use fusion_lab::{compare_strategies, HybridAttentionRunner};
use gpu_sim::GpuConfig;
use llm_serving::{offline_long_context, ModelConfig, ServingConfig, ServingEngine, Workload};
use pod_attention::PodAttention;

/// §5.1: across a sweep of hybrid batches POD-Attention accelerates attention
/// substantially on average and never loses to serial execution.
#[test]
fn pod_speedup_distribution_matches_paper_shape() {
    let gpu = GpuConfig::a100_80gb();
    let mut speedups = Vec::new();
    for cfg in [AttentionConfig::yi_6b(), AttentionConfig::llama3_8b()] {
        let runner = HybridAttentionRunner::new(cfg, gpu.clone());
        for context_kib in [4usize, 8, 16] {
            let context = context_kib * 1024;
            for chunk in [512usize, 2048] {
                for decode_bs in [32usize, 128] {
                    let batch = HybridBatch::uniform(chunk, context, decode_bs, context);
                    let s = runner
                        .speedup_over_fa_serial(&batch, AttentionStrategy::Pod)
                        .expect("POD runs");
                    speedups.push(s);
                }
            }
        }
    }
    let mean = speedups.iter().sum::<f64>() / speedups.len() as f64;
    let min = speedups.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = speedups.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        min >= 0.97,
        "POD should never lose to serial (min speedup {min:.3})"
    );
    assert!(mean > 1.15, "mean speedup {mean:.3} should be a clear win");
    assert!(
        max < 2.5,
        "max speedup {max:.3} should stay physically plausible"
    );
}

/// Figure 11's ordering: POD is the best strategy, HFuse is the strongest
/// baseline, FI_Batched can be the worst at long context.
#[test]
fn strategy_ranking_on_a_balanced_long_context_batch() {
    let runner = HybridAttentionRunner::new(AttentionConfig::llama3_8b(), GpuConfig::a100_80gb());
    let batch = HybridBatch::uniform(2048, 16 * 1024, 128, 16 * 1024);
    let rows = compare_strategies(&runner, &batch).expect("all strategies run");
    let time_of = |s: AttentionStrategy| {
        rows.iter()
            .find(|r| r.strategy == s)
            .expect("strategy present")
            .time
    };
    let pod = time_of(AttentionStrategy::Pod);
    assert!(pod <= time_of(AttentionStrategy::FaSerial));
    assert!(pod <= time_of(AttentionStrategy::FaStreams));
    assert!(pod <= time_of(AttentionStrategy::FaHFuse));
    assert!(pod <= time_of(AttentionStrategy::FiBatched));
    assert!(time_of(AttentionStrategy::FiBatched) > time_of(AttentionStrategy::FiSerial));
}

/// The analytic estimator used by the serving simulator agrees with the
/// CTA-level simulation on the POD-vs-serial speedup (within a loose band) —
/// this ties the end-to-end results back to the kernel-level model.
#[test]
fn analytic_estimator_tracks_the_cta_level_simulation() {
    let cfg = AttentionConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let pod = PodAttention::new(cfg, gpu.clone());
    let est = attn_kernels::AttentionEstimator::new(cfg, gpu);
    for batch in [
        HybridBatch::config_c0(),
        HybridBatch::uniform(1024, 8 * 1024, 64, 8 * 1024),
        HybridBatch::uniform(512, 16 * 1024, 128, 16 * 1024),
    ] {
        let sim_speedup = pod.speedup_over_serial(&batch).expect("sim runs");
        let serial = est.estimate(&batch, AttentionStrategy::FaSerial).total_time;
        let fused = est.estimate(&batch, AttentionStrategy::Pod).total_time;
        let analytic_speedup = serial / fused;
        let ratio = analytic_speedup / sim_speedup;
        assert!(
            (0.7..1.4).contains(&ratio),
            "analytic speedup {analytic_speedup:.2} vs simulated {sim_speedup:.2}"
        );
    }
}

/// §5.2: in offline serving, Sarathi+POD beats both Sarathi and vLLM in
/// throughput while staying stall-free.
#[test]
fn offline_serving_ordering() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let requests = offline_long_context(24, 16 * 1024, 512);
    let vllm =
        ServingEngine::new(ServingConfig::vllm(model.clone(), gpu.clone())).run(requests.clone());
    let sarathi = ServingEngine::new(ServingConfig::sarathi(model.clone(), gpu.clone(), 1024))
        .run(requests.clone());
    let pod = ServingEngine::new(ServingConfig::sarathi_pod(model, gpu, 1024)).run(requests);
    assert_eq!(pod.completed, 24);
    assert!(pod.requests_per_minute() > sarathi.requests_per_minute());
    assert!(pod.requests_per_minute() > vllm.requests_per_minute());
    assert!(pod.stall_fraction_200ms <= sarathi.stall_fraction_200ms + 1e-9);
}

/// §5.3: under online load, Sarathi+POD improves TTFT and request latency
/// over Sarathi without giving back its stall-free TBT.
#[test]
fn online_serving_latency_ordering() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let requests = Workload::arxiv().generate(64, 0.8, 99);
    let sarathi = ServingEngine::new(ServingConfig::sarathi(model.clone(), gpu.clone(), 1024))
        .run(requests.clone());
    let pod = ServingEngine::new(ServingConfig::sarathi_pod(model, gpu, 1024)).run(requests);
    assert_eq!(pod.completed, 64);
    assert!(pod.ttft.p50 <= sarathi.ttft.p50 * 1.01);
    assert!(pod.request_latency.p99 <= sarathi.request_latency.p99 * 1.01);
    assert!(pod.tbt.p99 <= sarathi.tbt.p99 * 1.05);
}

/// Degenerate workloads run through the whole stack without panicking.
#[test]
fn degenerate_workloads_are_handled() {
    let model = ModelConfig::yi_6b();
    let gpu = GpuConfig::a100_80gb();
    // Single tiny request.
    let report = ServingEngine::new(ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 512))
        .run(vec![llm_serving::RequestSpec::new(0.0, 8, 1)]);
    assert_eq!(report.completed, 1);
    // Prefill-only and decode-only batches at the kernel level.
    let pod = PodAttention::new(AttentionConfig::yi_6b(), gpu);
    assert!(pod.execute(&HybridBatch::prefill_only(64, 64)).is_ok());
    assert!(pod.execute(&HybridBatch::decode_only(1, 16)).is_ok());
}
