//! Integration tests for the prefix-sharing paged KV cache: the acceptance
//! golden (share ratio 0 changes nothing), the sharing win (TTFT and
//! scheduled prefill strictly improve on shared-prompt workloads),
//! preemption + restore determinism, and the prefix-affinity router.

use std::sync::atomic::{AtomicUsize, Ordering};

use gpu_sim::GpuConfig;
use llm_serving::{
    Cluster, ClusterConfig, ModelConfig, RouterPolicy, ServingConfig, ServingEngine, ServingReport,
    SharedPrefixWorkload, Workload,
};

fn llama3() -> ModelConfig {
    ModelConfig::llama3_8b()
}

fn gpu() -> GpuConfig {
    GpuConfig::a100_80gb()
}

fn sarathi() -> ServingConfig {
    ServingConfig::sarathi(llama3(), gpu(), 1024)
}

fn shared_workload(share_ratio: f64) -> SharedPrefixWorkload {
    SharedPrefixWorkload::new(Workload::internal(), 4, 2048, share_ratio, 0.35)
}

/// Scheduling-relevant fields must agree **bit-for-bit** (bookkeeping
/// counters like eviction totals may legitimately differ between policies).
fn assert_schedule_identical(tag: &str, a: &ServingReport, b: &ServingReport) {
    assert_eq!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "{tag}: makespan"
    );
    assert_eq!(a.completed, b.completed, "{tag}: completed");
    assert_eq!(a.iterations, b.iterations, "{tag}: iterations");
    assert_eq!(
        a.hybrid_iterations, b.hybrid_iterations,
        "{tag}: hybrid iterations"
    );
    assert_eq!(
        a.ttft.p50.to_bits(),
        b.ttft.p50.to_bits(),
        "{tag}: TTFT p50"
    );
    assert_eq!(
        a.ttft.p99.to_bits(),
        b.ttft.p99.to_bits(),
        "{tag}: TTFT p99"
    );
    assert_eq!(a.tbt.max.to_bits(), b.tbt.max.to_bits(), "{tag}: TBT max");
    assert_eq!(
        a.request_latency.p50.to_bits(),
        b.request_latency.p50.to_bits(),
        "{tag}: latency p50"
    );
    assert_eq!(a.busy_time.to_bits(), b.busy_time.to_bits(), "{tag}: busy");
    assert_eq!(
        a.prefill_tokens_scheduled, b.prefill_tokens_scheduled,
        "{tag}: prefill tokens"
    );
    assert_eq!(a.preemptions, b.preemptions, "{tag}: preemptions");
    assert_eq!(
        a.cached_prefix_tokens, b.cached_prefix_tokens,
        "{tag}: cached tokens"
    );
}

/// Acceptance golden, part 1: with share ratio 0 there is nothing to share,
/// so turning the whole prefix-caching machinery on (paged + index + LRU)
/// must not move a single bit of the schedule relative to paged-without-
/// caching.
#[test]
fn share_ratio_zero_with_caching_is_bit_for_bit_inert() {
    let specs = shared_workload(0.0).generate(40, 0.9, 21);
    let caching_on = ServingEngine::new(sarathi().with_paged_kv(true)).run(specs.clone());
    let caching_off = ServingEngine::new(sarathi().with_paged_kv(false)).run(specs);
    assert_schedule_identical("share0 paged", &caching_on, &caching_off);
    assert_eq!(caching_on.cached_prefix_tokens, 0);
    assert_eq!(caching_on.blocks_reused, 0);
    assert_eq!(caching_on.cow_copies, 0);
    assert_eq!(caching_on.prefix_hit_rate(), 0.0);
}

/// Acceptance golden, part 2: a share-ratio-0 trace served by the **default
/// (conservative) engine** reports bit-for-bit what the same sizes from the
/// plain generator report — the blocks refactor left pre-refactor behavior
/// untouched. (The existing goldens in `stepping_and_cluster.rs` pin the
/// default engine to the pre-stepping engine's exact bit patterns; this adds
/// that content annotations are inert under it.)
#[test]
fn share_ratio_zero_on_the_default_engine_matches_the_plain_workload() {
    let traced = shared_workload(0.0).generate(36, 1.0, 33);
    let plain = Workload::internal().generate(36, 1.0, 33);
    for (a, b) in traced.iter().zip(&plain) {
        assert_eq!(a.prompt_tokens, b.prompt_tokens);
        assert_eq!(a.output_tokens, b.output_tokens);
        assert_eq!(a.arrival, b.arrival);
    }
    let from_traced = ServingEngine::new(sarathi()).run(traced);
    let from_plain = ServingEngine::new(sarathi()).run(plain);
    assert_eq!(from_traced, from_plain);
}

/// The headline acceptance ordering: on a shared-system-prompt workload,
/// prefix sharing strictly improves mean TTFT and strictly reduces the
/// prefill tokens actually scheduled, for both attention backends.
#[test]
fn prefix_sharing_strictly_improves_ttft_and_prefill_work() {
    let specs = shared_workload(0.8).generate(48, 1.0, 7);
    for base in [sarathi(), ServingConfig::sarathi_pod(llama3(), gpu(), 1024)] {
        let with = ServingEngine::new(base.clone().with_paged_kv(true)).run(specs.clone());
        let without = ServingEngine::new(base.with_paged_kv(false)).run(specs.clone());
        assert_eq!(with.completed, 48);
        assert_eq!(without.completed, 48);
        assert!(
            with.ttft.mean < without.ttft.mean,
            "{}: mean TTFT {} must beat {}",
            with.system,
            with.ttft.mean,
            without.ttft.mean
        );
        assert!(
            with.prefill_tokens_scheduled < without.prefill_tokens_scheduled,
            "{}: scheduled prefill {} must be below {}",
            with.system,
            with.prefill_tokens_scheduled,
            without.prefill_tokens_scheduled
        );
        assert!(with.prefix_hit_rate() > 0.1, "{}", with.prefix_hit_rate());
        assert!(with.blocks_reused > 0);
        assert_eq!(
            with.cached_prefix_tokens + with.prefill_tokens_scheduled,
            without.prefill_tokens_scheduled,
            "every skipped token is one the baseline had to schedule"
        );
        assert_eq!(without.cached_prefix_tokens, 0);
    }
}

/// Multi-turn conversations whose prompts end mid-block exercise the
/// copy-on-write path: divergence inside a cached block copies it and reuses
/// the common leading tokens.
#[test]
fn multi_turn_resubmission_triggers_copy_on_write() {
    // A deliberately non-block-aligned system prompt (1042 % 16 != 0):
    // lineages sharing it diverge mid-block, which is the CoW case. (With an
    // aligned prefix, divergence falls exactly on a block boundary and full
    // matches suffice.)
    let w = SharedPrefixWorkload::new(Workload::internal(), 2, 1042, 1.0, 0.6);
    let report = ServingEngine::new(sarathi().with_paged_kv(true)).run(w.generate(60, 1.2, 19));
    assert_eq!(report.completed, 60);
    assert!(report.cow_copies > 0, "expected CoW copies on divergence");
    assert!(
        report.prefix_hit_rate() > 0.2,
        "{}",
        report.prefix_hit_rate()
    );
}

/// Preemption: a small pool with decode-heavy requests admits optimistically
/// (no output reservation), exhausts during decode growth, swaps out the
/// newest decode and restores it by recomputation. Everything still
/// completes, and the preemption shows up as a decode stall.
#[test]
fn pool_exhaustion_preempts_and_restores() {
    let mut config = sarathi().with_paged_kv(false);
    // ~4 requests of 2K+2K tokens fit fully; admit more than that.
    config.kv_capacity_tokens = Some(18_000);
    let specs = vec![llm_serving::RequestSpec::new(0.0, 2048, 2048); 8];
    let report = ServingEngine::new(config).run(specs);
    assert_eq!(report.completed, 8);
    assert!(
        report.preemptions > 0,
        "expected preemptions under pressure"
    );
    // The conservative policy on the same capacity also completes (it just
    // queues instead of preempting) — sanity that both paths drain.
    let mut conservative = sarathi();
    conservative.kv_capacity_tokens = Some(18_000);
    let specs = vec![llm_serving::RequestSpec::new(0.0, 2048, 2048); 8];
    let r2 = ServingEngine::new(conservative).run(specs);
    assert_eq!(r2.completed, 8);
    assert_eq!(r2.preemptions, 0);
}

/// Prefix caching softens preemption: the victim's indexed blocks stay
/// cached, so its restore re-matches them instead of recomputing everything
/// (unless eviction claimed them first).
#[test]
fn preemption_with_caching_restores_from_cache() {
    let w = SharedPrefixWorkload::new(Workload::internal(), 2, 1024, 1.0, 0.0);
    let mut config = sarathi().with_paged_kv(true);
    config.kv_capacity_tokens = Some(60_000);
    let report = ServingEngine::new(config).run(w.generate(24, 2.0, 3));
    assert_eq!(report.completed, 24);
    if report.preemptions > 0 {
        // Some restores hit the cache: cached tokens exceed what admission
        // alone could have matched is hard to assert tightly, but hit rate
        // must be positive and the run must stay consistent.
        assert!(report.cached_prefix_tokens > 0);
    }
}

/// A paged request that can never finish (prompt + output exceeds the pool)
/// must surface the same Blocked deadlock the conservative policy reports —
/// not livelock in an endless self-preempt/recompute cycle. Regression for
/// exactly that hang.
#[test]
#[should_panic(expected = "deadlock")]
fn infeasible_paged_request_blocks_instead_of_livelocking() {
    let mut config = sarathi().with_paged_kv(true);
    config.kv_capacity_tokens = Some(1600); // 100 blocks
    let _ = ServingEngine::new(config).run(vec![llm_serving::RequestSpec::new(0.0, 512, 2000)]);
}

/// The feasibility boundary: a request whose total exactly fills the pool is
/// admitted and completes (growth can always evict its own cached blocks on
/// the way to the final token).
#[test]
fn paged_request_filling_the_whole_pool_completes() {
    for caching in [false, true] {
        let mut config = sarathi().with_paged_kv(caching);
        config.kv_capacity_tokens = Some(1600);
        let report =
            ServingEngine::new(config).run(vec![llm_serving::RequestSpec::new(0.0, 512, 1088)]);
        assert_eq!(report.completed, 1, "caching={caching}");
    }
}

/// Determinism satellite: preemption + restore under a fixed seed yields an
/// identical `ServingReport` across two runs and across thread counts.
#[test]
fn preemption_is_deterministic_across_runs_and_threads() {
    let make_config = || {
        let mut c = ServingConfig::sarathi_pod(llama3(), gpu(), 1024).with_paged_kv(true);
        c.kv_capacity_tokens = Some(30_000);
        c
    };
    let w = SharedPrefixWorkload::new(Workload::internal(), 3, 2048, 0.7, 0.4);
    // Offline pressure: everyone arrives at once against a pool that holds
    // barely one conversation, so decode growth must preempt.
    let mut specs = w.generate(32, 1.5, 99);
    for s in &mut specs {
        s.arrival = 0.0;
    }

    let serial_a = ServingEngine::new(make_config()).run(specs.clone());
    let serial_b = ServingEngine::new(make_config()).run(specs.clone());
    assert_eq!(serial_a, serial_b, "two serial runs must be identical");
    assert!(
        serial_a.preemptions > 0,
        "workload must actually exercise preemption (got {})",
        serial_a.preemptions
    );

    // The same simulation fanned out across threads (as the bench sweeps do)
    // must produce the same report regardless of worker count.
    for workers in [1usize, 4] {
        let next = AtomicUsize::new(0);
        let mut reports: Vec<Option<ServingReport>> = vec![None; 4];
        let slots: Vec<_> = reports.iter_mut().map(Some).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let slot_refs: Vec<(usize, &mut Option<ServingReport>)> =
                slots.into_iter().flatten().enumerate().collect();
            let chunked = split_round_robin(slot_refs, workers);
            for chunk in chunked {
                let specs = &specs;
                let next = &next;
                handles.push(scope.spawn(move || {
                    for (_, slot) in chunk {
                        next.fetch_add(1, Ordering::Relaxed);
                        *slot = Some(ServingEngine::new(make_config()).run(specs.clone()));
                    }
                }));
            }
            for h in handles {
                h.join().expect("worker panicked");
            }
        });
        for r in reports.iter().flatten() {
            assert_eq!(
                r, &serial_a,
                "{workers}-thread run diverged from the serial report"
            );
        }
    }
}

fn split_round_robin<T>(items: Vec<T>, ways: usize) -> Vec<Vec<T>> {
    let mut out: Vec<Vec<T>> = (0..ways).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        out[i % ways].push(item);
    }
    out
}

/// The prefix-affinity router steers requests to the replica already holding
/// their prefix: on a grouped workload it achieves a higher fleet prefix hit
/// rate than round-robin, which scatters each group across every replica.
#[test]
fn prefix_affinity_routing_beats_round_robin_on_hit_rate() {
    let w = SharedPrefixWorkload::new(Workload::internal(), 4, 4096, 0.9, 0.4);
    let specs = w.generate(64, 2.0, 13);
    let base = sarathi().with_paged_kv(true);
    let affinity = Cluster::new(ClusterConfig::new(
        base.clone(),
        4,
        RouterPolicy::PrefixAffinity,
    ))
    .run(specs.clone());
    let rr = Cluster::new(ClusterConfig::new(base, 4, RouterPolicy::RoundRobin)).run(specs);
    assert_eq!(affinity.aggregate.completed, 64);
    assert_eq!(rr.aggregate.completed, 64);
    assert!(
        affinity.aggregate.prefix_hit_rate() > rr.aggregate.prefix_hit_rate(),
        "affinity hit rate {:.3} must beat round-robin {:.3}",
        affinity.aggregate.prefix_hit_rate(),
        rr.aggregate.prefix_hit_rate()
    );
    // Aggregates carry the new counters and serialize.
    let json = affinity.to_json().to_string_pretty();
    let parsed = llm_serving::JsonValue::parse(&json).expect("cluster JSON parses");
    assert!(parsed
        .get_path("aggregate.cached_prefix_tokens")
        .and_then(llm_serving::JsonValue::as_f64)
        .is_some_and(|v| v > 0.0));
}

/// A cluster of paged replicas behind any router is deterministic, and a
/// one-replica prefix-affinity fleet equals the plain engine.
#[test]
fn paged_cluster_is_deterministic_and_single_replica_matches_engine() {
    let w = SharedPrefixWorkload::new(Workload::internal(), 2, 2048, 0.6, 0.3);
    let specs = w.generate(24, 1.2, 5);
    let base = ServingConfig::sarathi_pod(llama3(), gpu(), 1024).with_paged_kv(true);
    let a = Cluster::new(ClusterConfig::new(
        base.clone(),
        3,
        RouterPolicy::PrefixAffinity,
    ))
    .run(specs.clone());
    let b = Cluster::new(ClusterConfig::new(
        base.clone(),
        3,
        RouterPolicy::PrefixAffinity,
    ))
    .run(specs.clone());
    assert_eq!(a, b);

    let solo = Cluster::new(ClusterConfig::new(
        base.clone(),
        1,
        RouterPolicy::PrefixAffinity,
    ))
    .run(specs.clone());
    let plain = ServingEngine::new(base).run(specs);
    assert_eq!(solo.per_replica[0], plain);
}
