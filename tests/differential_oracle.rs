//! Differential oracle: the paged KV policy (without prefix caching) and the
//! conservative policy must be **indistinguishable** when memory is ample
//! and nothing is shareable.
//!
//! With enough KV capacity, paged admission (allocate prompt blocks, grow on
//! demand) never defers, never preempts and never evicts — so it must make
//! exactly the decisions conservative admission makes, iteration for
//! iteration. Any divergence is paged-admission drift: a change to block
//! accounting, growth ordering or the feasibility check that silently alters
//! scheduling. The conservative engine is the oracle because golden tests pin
//! it bit-for-bit to the pre-refactor engine.

use gpu_sim::GpuConfig;
use llm_serving::{
    offline_long_context, Cluster, ClusterConfig, IterationOutcome, KvMigration, ModelConfig,
    RequestSpec, RouterPolicy, ServingConfig, ServingEngine, SloMix, Workload,
};

fn configs(scheduler_chunk: Option<usize>) -> (ServingConfig, ServingConfig) {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let conservative = match scheduler_chunk {
        Some(chunk) => ServingConfig::sarathi_pod(model, gpu, chunk),
        None => ServingConfig::vllm(model, gpu),
    };
    let paged = conservative.clone().with_paged_kv(false);
    (conservative, paged)
}

/// Drive both engines to drain in lockstep, asserting identical
/// [`IterationOutcome`] sequences, then identical reports (up to the system
/// label, which intentionally differs by the `"+paged"` suffix).
fn assert_lockstep_identical(tag: &str, specs: Vec<RequestSpec>, scheduler_chunk: Option<usize>) {
    let (conservative_cfg, paged_cfg) = configs(scheduler_chunk);
    let mut oracle = ServingEngine::new(conservative_cfg);
    let mut paged = ServingEngine::new(paged_cfg);
    for spec in &specs {
        oracle.submit(*spec);
        paged.submit(*spec);
    }
    let mut now = 0.0;
    let mut steps = 0usize;
    loop {
        let a = oracle.step(now);
        let b = paged.step(now);
        assert_eq!(
            a, b,
            "{tag}: outcome diverged at step {steps} (now = {now})"
        );
        steps += 1;
        match a {
            IterationOutcome::Ran(stats) => now = stats.completed_at,
            IterationOutcome::IdleUntil(t) => now = t,
            IterationOutcome::Drained => break,
            IterationOutcome::Blocked { .. } => {
                panic!("{tag}: ample-memory workload must never block")
            }
        }
    }
    let mut ra = oracle.report();
    let rb = paged.report();
    assert_eq!(format!("{}+paged", ra.system), rb.system, "{tag}: labels");
    ra.system = rb.system.clone();
    assert_eq!(ra, rb, "{tag}: final reports diverged");
    assert_eq!(rb.preemptions, 0, "{tag}: ample memory never preempts");
    assert_eq!(rb.blocks_reused, 0, "{tag}: nothing shareable");
    assert_eq!(rb.cached_prefix_tokens, 0, "{tag}");
}

#[test]
fn paged_matches_conservative_on_online_traces() {
    for seed in [3, 17, 91] {
        let specs = Workload::internal().generate(32, 1.2, seed);
        assert_lockstep_identical(&format!("internal/seed{seed}"), specs, Some(1024));
    }
    let specs = Workload::arxiv().generate(24, 0.8, 7);
    assert_lockstep_identical("arxiv", specs, Some(512));
}

#[test]
fn paged_matches_conservative_on_offline_batches() {
    assert_lockstep_identical(
        "offline",
        offline_long_context(16, 8 * 1024, 128),
        Some(1024),
    );
}

#[test]
fn paged_matches_conservative_under_the_vllm_scheduler() {
    let specs = Workload::internal().generate(24, 1.0, 29);
    assert_lockstep_identical("vllm", specs, None);
}

#[test]
fn paged_matches_conservative_with_slos_and_shedding() {
    // SLO grading and deadline shedding sit above the KV policy, so the
    // equivalence must survive them: both engines shed the same requests at
    // the same instants.
    use llm_serving::AdmissionPolicy;
    let specs = SloMix::interactive_batch().apply(Workload::internal().generate(40, 4.0, 13), 13);
    let (conservative_cfg, paged_cfg) = configs(Some(1024));
    let mut oracle =
        ServingEngine::new(conservative_cfg.with_admission(AdmissionPolicy::DeadlineShed));
    let mut paged = ServingEngine::new(paged_cfg.with_admission(AdmissionPolicy::DeadlineShed));
    for spec in &specs {
        oracle.submit(*spec);
        paged.submit(*spec);
    }
    oracle.run_until_drained();
    paged.run_until_drained();
    let mut ra = oracle.report();
    let rb = paged.report();
    ra.system = rb.system.clone();
    assert_eq!(ra, rb, "shed decisions must agree");
    for (a, b) in oracle.requests().iter().zip(paged.requests()) {
        assert_eq!(a.shed_time, b.shed_time, "request {} shed time", a.id);
    }
}

/// Dedup dimension of the oracle: with nothing shareable (plain workloads
/// carry opaque prompts, so no request ever holds a shared block), turning
/// decode dedup on over the full prefix-caching stack must stay in lockstep
/// — iteration for iteration — with the dedup-off engine. Any divergence is
/// dedup drift: the co-batching hint or the grouping pass changed a
/// schedule it had no sharing to justify changing.
#[test]
fn decode_dedup_matches_dedup_off_in_lockstep_when_nothing_is_shared() {
    for (tag, specs) in [
        ("internal", Workload::internal().generate(32, 1.2, 17)),
        ("offline", offline_long_context(12, 8 * 1024, 128)),
    ] {
        let base =
            ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024)
                .with_paged_kv(true);
        let mut off = ServingEngine::new(base.clone());
        let mut on = ServingEngine::new(base.with_decode_dedup(true));
        for spec in &specs {
            off.submit(*spec);
            on.submit(*spec);
        }
        let mut now = 0.0;
        let mut steps = 0usize;
        loop {
            let a = off.step(now);
            let b = on.step(now);
            assert_eq!(a, b, "{tag}: dedup diverged at step {steps} (now = {now})");
            steps += 1;
            match a {
                IterationOutcome::Ran(stats) => now = stats.completed_at,
                IterationOutcome::IdleUntil(t) => now = t,
                IterationOutcome::Drained => break,
                IterationOutcome::Blocked { .. } => {
                    panic!("{tag}: ample-memory workload must never block")
                }
            }
        }
        let mut ra = off.report();
        let rb = on.report();
        assert_eq!(format!("{}+dedup", ra.system), rb.system, "{tag}: labels");
        ra.system = rb.system.clone();
        assert_eq!(ra, rb, "{tag}: final reports diverged");
        assert_eq!(rb.decode_kv_tokens_deduped, 0, "{tag}: nothing shareable");
    }
}

/// Disaggregation oracle: with zero-cost migration and arrivals spaced so
/// requests never overlap, a prefill-replica + decode-replica pair must be
/// **outcome-identical** to a single colocated replica — same TTFT, same
/// token times, bit for bit. With no overlap the colocated engine's batches
/// are pure-prefill then pure-decode, which is exactly the work the split
/// fleet runs; free migration hands the KV over at the very instant the
/// colocated engine would have started decoding. Any divergence is
/// migration-path drift: a handoff that loses progress, re-mints the first
/// token, or shifts the decode clock.
#[test]
fn zero_cost_migration_is_outcome_identical_to_colocated() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    for paged in [false, true] {
        let mut config = ServingConfig::sarathi_pod(model.clone(), gpu.clone(), 1024);
        if paged {
            config = config.with_paged_kv(false);
        }
        // Arrivals 90 s apart: each request fully drains (prefill + decode
        // takes a few simulated seconds) before the next exists.
        let specs: Vec<RequestSpec> = [
            (4_096usize, 64usize),
            (16_384, 128),
            (1_000, 32),
            (8_192, 1), // single-token output: finishes at prefill, no handoff
            (2_048, 96),
        ]
        .iter()
        .enumerate()
        .map(|(i, &(p, o))| RequestSpec::new(90.0 * i as f64, p, o))
        .collect();

        let (colocated, colocated_requests) =
            ServingEngine::new(config.clone()).run_detailed(specs.clone());
        let mut cluster = Cluster::new(ClusterConfig::disaggregated(
            config,
            1,
            1,
            RouterPolicy::RoundRobin,
            KvMigration::free(),
        ));
        let disagg = cluster.run(specs.clone());

        assert_eq!(
            disagg.aggregate.completed, colocated.completed,
            "paged={paged}"
        );
        // Per-request identity, matched by arrival time (unique by
        // construction): TTFT and every token completion bit-for-bit.
        for want in &colocated_requests {
            let got = cluster
                .replicas()
                .iter()
                .flat_map(|r| r.requests())
                .find(|r| r.finish_time.is_some() && r.spec.arrival == want.spec.arrival)
                .unwrap_or_else(|| panic!("request at t={} lost", want.spec.arrival));
            assert_eq!(
                got.token_times, want.token_times,
                "paged={paged}: token times diverged for request at t={}",
                want.spec.arrival
            );
            assert_eq!(got.ttft(), want.ttft());
            assert_eq!(got.latency(), want.latency());
        }
        assert_eq!(
            disagg.aggregate.makespan.to_bits(),
            colocated.makespan.to_bits(),
            "paged={paged}"
        );
        assert_eq!(
            disagg.aggregate.ttft.p99.to_bits(),
            colocated.ttft.p99.to_bits()
        );
        assert_eq!(
            disagg.aggregate.tbt.max.to_bits(),
            colocated.tbt.max.to_bits()
        );
        assert_eq!(
            disagg.aggregate.iterations, colocated.iterations,
            "paged={paged}: the split fleet runs the same iterations, just \
             on two engines"
        );
        assert_eq!(disagg.aggregate.migrated_out_requests, 4);
    }
}

/// The oracle is only an oracle where its preconditions hold: squeeze the
/// memory and the two policies legitimately diverge (paged admits on prompt
/// blocks only). This guards the test itself against becoming vacuous — if
/// the policies were accidentally wired to the same admission path, the
/// divergence would disappear.
#[test]
fn the_policies_do_diverge_under_memory_pressure() {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let mut conservative_cfg = ServingConfig::sarathi_pod(model, gpu, 1024);
    // Room for ~2 full requests conservatively, but ~3 prompts paged.
    conservative_cfg.kv_capacity_tokens = Some(14_000);
    let paged_cfg = conservative_cfg.clone().with_paged_kv(false);
    let specs = vec![RequestSpec::new(0.0, 4_096, 1_024); 6];
    let a = ServingEngine::new(conservative_cfg).run(specs.clone());
    let b = ServingEngine::new(paged_cfg).run(specs);
    assert_eq!(a.completed, 6);
    assert_eq!(b.completed, 6);
    assert_ne!(
        a.makespan.to_bits(),
        b.makespan.to_bits(),
        "under pressure the policies schedule differently — if they do not, \
         the lockstep tests above are testing nothing"
    );
}
