//! Determinism and inertness guarantees for the tracing subsystem.
//!
//! The flight recorder's contract is twofold: **off**, it must be
//! bit-for-bit absent — a traced config and an untraced config produce
//! identical reports — and **on**, the exported bytes must be a pure
//! function of (seed, config): the same run exports the same JSONL and
//! Chrome trace at every cluster worker count, under the event-driven core
//! and the lockstep oracle alike. These tests pin both halves, plus the
//! span-fidelity property the exporters are trusted for: terminal events in
//! a large-enough ring reconstruct the report's outcome counts exactly.

use gpu_sim::GpuConfig;
use llm_serving::{
    AdmissionPolicy, AutoscalerConfig, Cluster, ClusterConfig, KvMigration, ModelConfig,
    RouterPolicy, ServingConfig, ServingEngine, SloMix, TraceConfig, TraceEventKind, Workload,
};

fn base() -> ServingConfig {
    ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 1024)
        .with_paged_kv(true)
}

fn traced(capacity: usize) -> ServingConfig {
    base().with_tracing(TraceConfig::new().with_capacity(capacity))
}

/// Same seed, same config ⇒ byte-identical exports at every worker count,
/// and under the lockstep oracle. The recorder rides the virtual clock, so
/// host-side parallelism must never leak into the trace.
#[test]
fn trace_export_is_byte_identical_across_worker_counts() {
    let specs = Workload::internal().generate(300, 6.0, 17);
    let export = |cluster: &Cluster| {
        let rec = cluster.flight_recording().expect("traced cluster");
        (rec.to_jsonl(), rec.to_chrome_json().to_string_pretty())
    };

    let mut cluster = Cluster::new(ClusterConfig::new(
        traced(1 << 20),
        3,
        RouterPolicy::LeastOutstandingTokens,
    ));
    cluster.set_advance_workers(1);
    let baseline_report = cluster.run(specs.clone());
    let (baseline_jsonl, baseline_chrome) = export(&cluster);
    assert!(!baseline_jsonl.is_empty());

    for workers in 2..=8 {
        cluster.set_advance_workers(workers);
        let report = cluster.run(specs.clone());
        assert_eq!(report, baseline_report, "{workers} workers: report drifted");
        let (jsonl, chrome) = export(&cluster);
        assert_eq!(jsonl, baseline_jsonl, "{workers} workers: JSONL drifted");
        assert_eq!(chrome, baseline_chrome, "{workers} workers: Chrome drifted");
    }

    let lockstep_report = cluster.run_lockstep(specs);
    assert_eq!(lockstep_report, baseline_report, "lockstep: report drifted");
    let (jsonl, chrome) = export(&cluster);
    assert_eq!(jsonl, baseline_jsonl, "lockstep: JSONL drifted");
    assert_eq!(chrome, baseline_chrome, "lockstep: Chrome drifted");
}

/// Tracing off is provably inert: a config whose only difference is
/// `with_tracing` produces the bit-identical report, at the engine and the
/// cluster level. (The reverse — that *enabling* tracing also changes
/// nothing — is asserted here too; emission only observes.)
#[test]
fn tracing_is_inert_on_simulation_outcomes() {
    let specs = SloMix::interactive_batch()
        .apply(Workload::internal().generate(120, 8.0, 23), 23)
        .into_iter()
        .collect::<Vec<_>>();

    let engine_config = base().with_admission(AdmissionPolicy::DeadlineShed);
    let plain = ServingEngine::new(engine_config.clone()).run(specs.clone());
    let traced_cfg = engine_config.with_tracing(TraceConfig::new());
    let traced_run = ServingEngine::new(traced_cfg).run(specs.clone());
    assert_eq!(
        plain.to_json().to_string_pretty(),
        traced_run.to_json().to_string_pretty(),
        "engine: tracing changed the report"
    );

    let cluster_plain =
        Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin)).run(specs.clone());
    let cluster_traced = Cluster::new(ClusterConfig::new(
        traced(4096),
        2,
        RouterPolicy::RoundRobin,
    ))
    .run(specs);
    assert_eq!(
        cluster_plain.to_json().to_string_pretty(),
        cluster_traced.to_json().to_string_pretty(),
        "cluster: tracing changed the report"
    );
}

/// An untraced run yields no recording; a traced run yields one whose
/// terminal events reconstruct the report's outcome counts exactly —
/// including migrations on a disaggregated fleet, where every request
/// finishes on a different replica than it prefilled on.
#[test]
fn span_outcomes_reconstruct_cluster_report() {
    let untraced = Cluster::new(ClusterConfig::new(base(), 2, RouterPolicy::RoundRobin));
    assert!(untraced.flight_recording().is_none());

    let specs = SloMix::interactive_batch().apply(Workload::internal().generate(200, 10.0, 31), 31);
    let mut cluster = Cluster::new(ClusterConfig::disaggregated(
        traced(1 << 20).with_admission(AdmissionPolicy::DeadlineShed),
        1,
        1,
        RouterPolicy::RoundRobin,
        KvMigration::infiniband(),
    ));
    let report = cluster.run(specs);
    let recording = cluster.flight_recording().expect("traced cluster");
    assert_eq!(recording.dropped, 0, "ring too small for the span check");

    let outcomes = recording.span_outcomes();
    assert_eq!(outcomes.finished, report.aggregate.completed);
    assert_eq!(outcomes.shed, report.aggregate.shed_requests);
    assert_eq!(
        outcomes.migrated_out,
        report.aggregate.migrated_out_requests
    );
    assert_eq!(outcomes.migrated_in, report.aggregate.migrated_in_requests);
    assert!(
        outcomes.migrated_out > 0,
        "disaggregated fleet produced no migrations — the check is vacuous"
    );
}

/// Autoscaler actions are cluster-level events: the recording's cluster log
/// carries exactly the scale-out/in actions the report counts.
#[test]
fn autoscaler_events_land_in_the_cluster_log() {
    let specs = Workload::internal().generate(400, 25.0, 41);
    let mut cluster = Cluster::new(
        ClusterConfig::new(traced(1 << 20), 1, RouterPolicy::LeastOutstandingTokens)
            .with_autoscaler(AutoscalerConfig::new(1, 4)),
    );
    let report = cluster.run(specs);
    let recording = cluster.flight_recording().expect("traced cluster");

    let scale_outs = recording
        .cluster
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::ScaleOut { .. }))
        .count();
    let scale_ins = recording
        .cluster
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::ScaleIn { .. }))
        .count();
    assert_eq!(scale_outs, report.scale_out_events);
    assert_eq!(scale_ins, report.scale_in_events);
    assert!(
        scale_outs > 0,
        "the burst never tripped the autoscaler — the check is vacuous"
    );
}
