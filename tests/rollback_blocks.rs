//! Rollback × block-pool backbone: speculative decode optimistically grows a
//! request's KV chain by its draft width, then truncates the rejected suffix
//! — a grow/release cycle the pool must survive **exactly**, across block
//! boundaries, under CoW prefix sharing, and interleaved with preemption.
//!
//! Three layers of defense:
//! * pool-level property sweeps of the grow-then-truncate cycle the engine
//!   runs (`split_off` + `release_blocks`), over every context offset within
//!   a block, draft depth and rejection count;
//! * an indexed-chain guard: rollback-style release of a sharer's tail must
//!   never free blocks the prefix index (or another sharer) still holds;
//! * engine/cluster determinism: rollback-then-preempt-then-restore runs
//!   fingerprint bit-identically across repeats and advancement worker
//!   counts, with every path (rejections, preemptions, prefix hits) proven
//!   live by the report counters.

use gpu_sim::GpuConfig;
use llm_serving::{
    blocks_for, AcceptanceModel, BlockPool, Cluster, ClusterConfig, DraftModelConfig, ModelConfig,
    PromptContent, RequestSpec, RouterPolicy, ServingConfig, ServingEngine, SharedPrefixWorkload,
    Workload, BLOCK_TOKENS,
};

/// The engine's speculative grow/rollback cycle, distilled: a request at
/// `ctx` tokens grows its chain for a width-`w` round, the verifier keeps
/// `minted <= w` tokens, and the tail blocks past the surviving context are
/// released. Sweeps every context offset within a block, so the cycle
/// crosses zero, one or several block boundaries in both directions.
#[test]
fn grow_then_rollback_conserves_blocks_across_boundaries() {
    let mut pool = BlockPool::new(64 * BLOCK_TOKENS);
    let baseline_free = pool.free_blocks();
    for ctx in 1..=(3 * BLOCK_TOKENS) {
        for width in 1..=8usize {
            for minted in 1..=width {
                let mut chain = pool.alloc(blocks_for(ctx)).expect("ample pool");
                // Optimistic growth to hold the whole drafted width.
                let grown = blocks_for(ctx + width);
                if grown > chain.len() {
                    chain.extend(pool.alloc(grown - chain.len()).expect("ample pool"));
                }
                assert_eq!(
                    pool.referenced_blocks(),
                    grown,
                    "ctx={ctx} width={width}: optimistic chain size"
                );
                // Verify kept `minted`: truncate to the surviving context,
                // exactly as the engine does after `Request::rollback`.
                let keep = blocks_for(ctx + minted);
                let tail = chain.split_off(keep);
                pool.release(&tail);
                assert_eq!(
                    pool.referenced_blocks(),
                    keep,
                    "ctx={ctx} width={width} minted={minted}: post-rollback chain"
                );
                pool.release(&chain);
                assert_eq!(
                    pool.free_blocks(),
                    baseline_free,
                    "ctx={ctx} width={width} minted={minted}: pool must drain clean"
                );
            }
        }
    }
}

/// A rollback-style tail release must never free blocks another sharer (or
/// the prefix index) still holds: the sharer's release drops only its own
/// reference, the survivor keeps decoding on the same blocks, and the chain
/// stays matchable afterwards.
#[test]
fn shared_tail_survives_a_sharers_rollback_release() {
    let mut pool = BlockPool::new(32 * BLOCK_TOKENS);
    let content = PromptContent::shared(0xBEEF, 4 * BLOCK_TOKENS, 1);
    // First request computes and indexes four full blocks.
    let own = pool.alloc(4).expect("ample pool");
    let (_, registered) = pool.extend_index(llm_serving::Cursor::root(), content, 0, &own);
    assert_eq!(registered, 4, "all four blocks indexed");
    // Second request acquires the whole cached prefix: every block now has
    // two references.
    let m = pool.acquire_prefix(content, 4 * BLOCK_TOKENS);
    assert_eq!(m.cached_tokens, 4 * BLOCK_TOKENS);
    assert_eq!(m.blocks, own, "sharer rides the same chain");
    // The sharer speculates past the shared region, then a full rejection
    // rolls it back: its private tail goes, the shared blocks lose only the
    // sharer's reference.
    let mut sharer_chain = m.blocks.clone();
    sharer_chain.extend(pool.alloc(1).expect("room for a draft block"));
    let tail = sharer_chain.split_off(4);
    pool.release(&tail);
    pool.release(&sharer_chain);
    assert_eq!(
        pool.referenced_blocks(),
        4,
        "the originator still references its chain"
    );
    // The chain is still indexed and matchable after the sharer vanished.
    assert_eq!(
        pool.peek_prefix(content, 4 * BLOCK_TOKENS),
        4 * BLOCK_TOKENS
    );
    pool.release(&own);
    assert_eq!(pool.referenced_blocks(), 0, "fully released");
    assert_eq!(pool.cached_blocks(), 4, "chain stays cached for reuse");
}

fn spec_config(kv_capacity: Option<usize>, prefix_caching: bool) -> ServingConfig {
    let mut config =
        ServingConfig::sarathi_pod(ModelConfig::llama3_8b(), GpuConfig::a100_80gb(), 512)
            .with_paged_kv(prefix_caching)
            .with_speculative(
                6,
                DraftModelConfig::scaled(0.2),
                AcceptanceModel::new(0.35, 99),
            );
    config.kv_capacity_tokens = kv_capacity;
    config
}

/// CoW prefix sharing under constant rollback: a shared-prefix trace with a
/// rejection-heavy acceptance model drains leak-free, with both the sharing
/// path and the rollback path proven live by the counters.
#[test]
fn prefix_shared_speculative_runs_are_leak_free_and_deterministic() {
    for seed in [11u64, 47, 83] {
        let shared = SharedPrefixWorkload::new(Workload::internal(), 2, 257, 0.6, 0.3);
        let specs = shared.generate(18, 3.0, seed);
        let run = |specs: Vec<RequestSpec>| {
            let mut engine = ServingEngine::new(spec_config(None, true));
            for s in specs {
                engine.submit(s);
            }
            engine.run_until_drained();
            assert_eq!(engine.kv_utilization(), 0.0, "seed {seed}: leaked blocks");
            engine.report()
        };
        let a = run(specs.clone());
        let b = run(specs);
        assert_eq!(a.completed, 18, "seed {seed}");
        assert!(
            a.cached_prefix_tokens > 0,
            "seed {seed}: sharing path never exercised"
        );
        assert!(
            a.draft_tokens_rejected > 0,
            "seed {seed}: rollback path never exercised"
        );
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty(),
            "seed {seed}: repeat run diverged"
        );
    }
}

/// Rollback-then-preempt-then-restore: a tight pool forces preemptions in
/// the middle of a rejection-heavy speculative run. Restored requests
/// recompute, re-speculate (their round index never resets, so acceptance
/// draws stay deterministic) and finish; the whole thing fingerprints
/// bit-identically across repeats and seeds.
#[test]
fn rollback_preempt_restore_is_deterministic_and_leak_free() {
    for seed in [7u64, 29, 61] {
        // Long decodes against a pool the prompts nearly fill at admission:
        // paged admission charges prompt blocks only, so the collective
        // decode growth (700 tokens each, plus the drafted widths) exhausts
        // the pool mid-decode and forces LIFO eviction.
        let mut specs = Workload::internal().generate(8, 6.0, seed);
        for s in &mut specs {
            s.prompt_tokens = 2_048;
            s.output_tokens = 700;
        }
        let run = |specs: Vec<RequestSpec>| {
            let mut engine = ServingEngine::new(spec_config(Some(16_000), false));
            for s in specs {
                engine.submit(s);
            }
            engine.run_until_drained();
            assert_eq!(engine.kv_utilization(), 0.0, "seed {seed}: leaked blocks");
            engine.report()
        };
        let a = run(specs.clone());
        let b = run(specs);
        assert_eq!(a.completed, 8, "seed {seed}: conservation across restore");
        assert!(
            a.preemptions > 0,
            "seed {seed}: the tight pool must force preemption"
        );
        assert!(
            a.draft_tokens_rejected > 0,
            "seed {seed}: rollback path never exercised"
        );
        assert_eq!(
            a.to_json().to_string_pretty(),
            b.to_json().to_string_pretty(),
            "seed {seed}: repeat run diverged"
        );
    }
}

/// The same rollback-plus-preemption stress at the fleet level: the
/// event-driven cluster core must fingerprint bit-identically at every
/// advancement worker count (1 and 7, the CI matrix's two thread counts).
#[test]
fn speculative_cluster_runs_are_worker_count_independent() {
    let specs = Workload::internal().generate(24, 6.0, 13);
    let fingerprint = |workers: usize| {
        let mut cluster = Cluster::new(ClusterConfig::new(
            spec_config(Some(48_000), false),
            2,
            RouterPolicy::LeastOutstandingTokens,
        ));
        cluster.set_advance_workers(workers);
        let report = cluster.run(specs.clone());
        for replica in cluster.replicas() {
            assert_eq!(replica.kv_utilization(), 0.0, "replica leaked");
        }
        assert_eq!(report.aggregate.completed, 24);
        assert!(report.aggregate.draft_tokens_rejected > 0);
        report.to_json().to_string_pretty()
    };
    let one = fingerprint(1);
    let seven = fingerprint(7);
    assert_eq!(one, seven, "worker count changed the speculative schedule");
}
