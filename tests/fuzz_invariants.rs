//! Seeded property-fuzz harness: hundreds of random
//! {workload × scheduler × KV policy × router × admission × autoscaler}
//! configurations, each asserting the engine/cluster invariants that every
//! refactor must preserve:
//!
//! * the virtual clock is monotonic, and iteration intervals are well formed;
//! * no request is lost or duplicated across preemption, shedding and
//!   autoscaler re-queueing — at drain, every request is finished, shed, or
//!   reassigned (and reassigned ones finish exactly once elsewhere); half
//!   the cases run multi-tenant traces (random tenant counts, weights and
//!   priority classes) so fair-queue deferral and priority preemption are
//!   under the same conservation checks;
//! * the block pool is leak-free after `run_until_drained` (utilization is
//!   exactly zero, whatever mix of preemptions/evictions happened);
//! * prefill and decode token conservation: every finished request computed
//!   exactly its prompt (minus prefix-cache hits, plus preemption recompute)
//!   and generated exactly its output tokens;
//! * the event-driven cluster core (with a random advancement worker count,
//!   and sketch-backed streaming metrics on a slice of cases) produces
//!   reports bit-identical to the sequential lockstep oracle
//!   (`Cluster::run_lockstep`).
//!
//! Cases fan out over a worker pool sized by `POD_TEST_THREADS` (default:
//! available parallelism); every case is deterministic from its seed alone,
//! and a serial re-run of a sample is compared against the pooled results so
//! thread-count independence is enforced *inside* the test as well as by the
//! CI matrix. `POD_FUZZ_CASES` overrides the case count (default 500).
//!
//! Every case runs with the flight recorder on: when an invariant panics,
//! the recorded trace is dumped to `target/fuzz_artifacts/<seed>.trace.json`
//! (a Chrome `trace_event` document — load it in `chrome://tracing`) and
//! the dump path is appended to the panic message, so a failing seed ships
//! its own request-level timeline. A slice of cases additionally re-runs
//! untraced and asserts the bit-identical report — tracing must never
//! perturb the fingerprints these invariants pin.

use gpu_sim::GpuConfig;
use llm_serving::{
    AcceptanceModel, AdmissionPolicy, AutoscalerConfig, Cluster, ClusterConfig, DraftModelConfig,
    FairQueueConfig, FlightRecording, IterationOutcome, KvCachePolicy, KvMigration, ModelConfig,
    Phase, Priority, ReplicaRole, RequestSpec, RouterPolicy, ServingConfig, ServingEngine,
    SharedPrefixWorkload, SloMix, SplitMix64, TenantId, TraceConfig, Workload,
};

fn fuzz_cases() -> usize {
    std::env::var("POD_FUZZ_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

fn test_threads() -> usize {
    std::env::var("POD_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n: &usize| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
}

/// A scaled-down trace generator so a 500-case sweep stays fast in debug
/// builds; a slice of cases still runs the paper-statistics workloads.
fn sample_workload(rng: &mut SplitMix64) -> Workload {
    match rng.next_usize(4) {
        0 => Workload::internal(),
        1 => Workload::arxiv(),
        _ => Workload {
            name: "mini".to_string(),
            mean_context: 2_500.0,
            context_range: (512, 6 * 1024),
            mean_decode: 48.0,
            min_decode: 4,
        },
    }
}

fn sample_specs(rng: &mut SplitMix64, seed: u64) -> Vec<RequestSpec> {
    let count = 4 + rng.next_usize(10);
    let qps = 0.5 + rng.next_f64() * 5.0;
    let base = sample_workload(rng);
    let specs = if rng.next_usize(4) == 0 {
        // Shared-prefix trace: exercises the radix index, CoW and multi-turn
        // follow-ups under the paged policies.
        let shared = SharedPrefixWorkload::new(base, 1 + rng.next_usize(3), 257, 0.6, 0.3);
        shared.generate(count, qps, seed)
    } else {
        base.generate(count, qps, seed)
    };
    let specs = match rng.next_usize(3) {
        0 => specs,
        1 => SloMix::interactive_batch().apply(specs, seed),
        _ => SloMix::new(vec![(
            1.0,
            Some(llm_serving::SloSpec::new("strict", 0.75, 0.1)),
        )])
        .apply(specs, seed),
    };
    stamp_tenants(rng, specs)
}

/// Half the traces run multi-tenant: random tenant counts and a sprinkle of
/// non-default priority classes, so fair-queue deferral and priority
/// preemption face the same conservation invariants as plain FCFS.
fn stamp_tenants(rng: &mut SplitMix64, specs: Vec<RequestSpec>) -> Vec<RequestSpec> {
    if rng.next_usize(2) == 0 {
        return specs;
    }
    let tenant_count = 1 + rng.next_usize(4);
    specs
        .into_iter()
        .map(|s| {
            let s = s.with_tenant(TenantId(rng.next_usize(tenant_count) as u32));
            match rng.next_usize(4) {
                0 => s.with_priority(Priority::Low),
                1 => s.with_priority(Priority::High),
                _ => s,
            }
        })
        .collect()
}

fn sample_config(rng: &mut SplitMix64) -> ServingConfig {
    let model = ModelConfig::llama3_8b();
    let gpu = GpuConfig::a100_80gb();
    let mut config = match rng.next_usize(4) {
        0 => ServingConfig::vllm(model, gpu),
        _ => {
            let chunk = [256, 512, 1024][rng.next_usize(3)];
            if rng.next_usize(2) == 0 {
                ServingConfig::sarathi(model, gpu, chunk)
            } else {
                ServingConfig::sarathi_pod(model, gpu, chunk)
            }
        }
    };
    config.kv_policy = match rng.next_usize(3) {
        0 => KvCachePolicy::Conservative,
        1 => KvCachePolicy::Paged {
            prefix_caching: false,
        },
        _ => KvCachePolicy::Paged {
            prefix_caching: true,
        },
    };
    // Decode dedup rides along on half the configs — active only when the
    // policy above landed on paged + prefix caching, so the sweep covers
    // inert-by-policy combinations too.
    if rng.next_usize(2) == 0 {
        config.decode_dedup = true;
    }
    // Small capacities force queueing (conservative) and preemption (paged);
    // 48K still fits the largest generatable request, so no config is a
    // guaranteed deadlock.
    config.kv_capacity_tokens = match rng.next_usize(3) {
        0 => Some(48_000),
        1 => Some(96_000),
        _ => None,
    };
    if rng.next_usize(3) == 0 {
        config.admission = AdmissionPolicy::DeadlineShed;
    }
    // Fair queueing rides along on half the configs, with random per-tenant
    // weights and sometimes priority preemption: the conservation and
    // leak-freedom invariants below must hold however the queue is reordered
    // or resident decodes are evicted.
    if rng.next_usize(2) == 0 {
        let mut fair = FairQueueConfig::new();
        for t in 0..4u32 {
            if rng.next_usize(2) == 0 {
                fair = fair.with_weight(TenantId(t), 0.25 + rng.next_f64() * 4.0);
            }
        }
        if rng.next_usize(2) == 0 {
            fair = fair.with_priority_preemption(true);
        }
        config = config.with_fair_queue(fair);
    }
    // Speculative decode rides along on a third of the configs: random draft
    // depth (k ∈ 1..=8), random acceptance rate (endpoints included) and a
    // random draft-model scale (sometimes free), so rollback, verify pricing
    // and the draft cost path face every invariant below across the full
    // scheduler × KV-policy × tenancy sweep.
    if rng.next_usize(3) == 0 {
        let k = 1 + rng.next_usize(8);
        let rate = match rng.next_usize(5) {
            0 => 0.0,
            1 => 1.0,
            _ => rng.next_f64(),
        };
        let draft = if rng.next_usize(3) == 0 {
            DraftModelConfig::free()
        } else {
            DraftModelConfig::scaled(0.05 + rng.next_f64() * 0.45)
        };
        config = config.with_speculative(k, draft, AcceptanceModel::new(rate, rng.next_u64()));
    }
    config
}

/// Where a failing case's flight recording lands.
fn fuzz_artifact_path(seed: u64) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/fuzz_artifacts")
        .join(format!("{seed}.trace.json"))
}

/// An invariant fired: write the case's flight recording as a Chrome trace
/// and re-raise the panic with the dump path in the message, so the failure
/// report carries its own timeline.
fn dump_and_repanic(
    seed: u64,
    recording: Option<FlightRecording>,
    payload: Box<dyn std::any::Any + Send>,
) -> ! {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("non-string panic payload");
    let note = match recording {
        Some(rec) => {
            let path = fuzz_artifact_path(seed);
            std::fs::create_dir_all(path.parent().expect("artifact dir"))
                .and_then(|()| std::fs::write(&path, rec.to_chrome_json().to_string_compact()))
                .map(|()| format!("flight recording dumped to {}", path.display()))
                .unwrap_or_else(|e| format!("flight recording dump FAILED: {e}"))
        }
        None => "no flight recording (tracing disabled)".to_string(),
    };
    panic!("{msg}\n{note}");
}

/// Step one engine to drain by hand, checking clock/interval invariants on
/// the way, then check conservation and leak-freedom. Returns the report
/// JSON as the case's fingerprint. Runs traced; on an invariant failure the
/// flight recording is dumped via [`dump_and_repanic`].
fn run_engine_case(seed: u64) -> String {
    let mut rng = SplitMix64::seed_from_u64(seed);
    let specs = sample_specs(&mut rng, seed);
    let config = sample_config(&mut rng);
    let tag = format!("engine case seed={seed} ({})", config.system_label());

    let mut engine = ServingEngine::new(config.clone().with_tracing(TraceConfig::new()));
    for spec in &specs {
        engine.submit(*spec);
    }
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine_case_body(&tag, &mut engine, &specs)
    }));
    let fingerprint = match outcome {
        Ok(fp) => fp,
        Err(payload) => dump_and_repanic(seed, engine.flight_recording(), payload),
    };
    // Inertness ride-along on a slice of cases: the untraced config must
    // fingerprint bit-identically — tracing observes, never perturbs.
    if seed % 8 == 0 {
        let untraced = ServingEngine::new(config)
            .run(specs)
            .to_json()
            .to_string_pretty();
        assert_eq!(
            untraced, fingerprint,
            "{tag}: tracing changed the report fingerprint"
        );
    }
    fingerprint
}

fn engine_case_body(tag: &str, engine: &mut ServingEngine, specs: &[RequestSpec]) -> String {
    let mut now = 0.0_f64;
    let mut last_clock = 0.0_f64;
    let mut decode_tokens = 0usize;
    let mut prefill_tokens = 0usize;
    let mut finished_seen = 0usize;
    loop {
        let clock_before = engine.clock();
        assert!(
            clock_before >= last_clock,
            "{tag}: clock went backwards ({clock_before} < {last_clock})"
        );
        last_clock = clock_before;
        match engine.step(now) {
            IterationOutcome::Ran(stats) => {
                assert!(
                    stats.duration > 0.0 && stats.duration.is_finite(),
                    "{tag}: bad iteration duration {}",
                    stats.duration
                );
                assert!(
                    stats.started_at >= clock_before.min(now)
                        && stats.completed_at > stats.started_at,
                    "{tag}: malformed interval [{}, {}]",
                    stats.started_at,
                    stats.completed_at
                );
                assert_eq!(
                    engine.clock(),
                    stats.completed_at,
                    "{tag}: clock must equal the last completion"
                );
                assert!(
                    stats.prefill_tokens + stats.decode_tokens > 0,
                    "{tag}: an executed iteration processed no tokens"
                );
                decode_tokens += stats.decode_tokens;
                prefill_tokens += stats.prefill_tokens;
                finished_seen += stats.newly_finished;
                now = stats.completed_at;
            }
            IterationOutcome::IdleUntil(t) => {
                assert!(
                    t > now,
                    "{tag}: IdleUntil({t}) must point past the caller clock {now}"
                );
                now = t;
            }
            IterationOutcome::Drained => break,
            IterationOutcome::Blocked {
                needed_tokens,
                capacity_tokens,
            } => panic!("{tag}: blocked ({needed_tokens} vs {capacity_tokens})"),
        }
    }
    assert!(engine.is_drained(), "{tag}: drained engine must report so");

    // No request lost or duplicated; per-request token conservation.
    let mut finished = 0usize;
    let mut shed = 0usize;
    let mut expected_decodes = 0usize;
    for req in engine.requests() {
        match (req.finish_time.is_some(), req.shed_time.is_some()) {
            (true, false) => {
                finished += 1;
                assert_eq!(
                    req.generated, req.spec.output_tokens,
                    "{tag}: request {} generated the wrong token count",
                    req.id
                );
                assert_eq!(
                    req.prefilled,
                    req.target_prefill(),
                    "{tag}: request {} prefill incomplete",
                    req.id
                );
                assert_eq!(
                    req.token_times.len(),
                    req.spec.output_tokens,
                    "{tag}: request {} token-time count",
                    req.id
                );
                // Decode tokens actually scheduled for this request: all but
                // the first (produced at prefill completion), regardless of
                // how many times it was preempted and restored.
                expected_decodes += req.spec.output_tokens - 1;
            }
            (false, true) => {
                shed += 1;
                assert_eq!(
                    req.prefilled, 0,
                    "{tag}: shed request {} had computed tokens",
                    req.id
                );
                assert_eq!(req.phase(), Phase::Queued, "{tag}: shed request phase");
            }
            (false, false) => panic!("{tag}: request {} lost (neither finished nor shed)", req.id),
            (true, true) => panic!("{tag}: request {} both finished and shed", req.id),
        }
    }
    assert_eq!(finished + shed, specs.len(), "{tag}: request conservation");
    assert_eq!(
        finished, finished_seen,
        "{tag}: newly_finished conservation"
    );
    assert_eq!(
        decode_tokens, expected_decodes,
        "{tag}: decode conservation"
    );

    let report = engine.report();
    // Speculative conservation: per-request draft tallies sum to the
    // report's counters; every round nets at least its one mandatory token
    // (so net decode tokens bound the round count); and net progress beyond
    // one token per round is exactly paid for by accepted drafts — rejected
    // drafts were rolled back without trace in the token accounting.
    let spec_rounds: usize = engine.requests().iter().map(|r| r.spec_rounds).sum();
    let accepted: usize = engine.requests().iter().map(|r| r.draft_accepted).sum();
    let rejected: usize = engine.requests().iter().map(|r| r.draft_rejected).sum();
    assert_eq!(report.spec_rounds, spec_rounds, "{tag}: spec round totals");
    assert_eq!(
        report.draft_tokens_accepted, accepted,
        "{tag}: accepted-draft totals"
    );
    assert_eq!(
        report.draft_tokens_rejected, rejected,
        "{tag}: rejected-draft totals"
    );
    if engine.config().decode_mode.is_speculative() {
        assert!(
            finished == 0 || spec_rounds > 0,
            "{tag}: a speculative config that finished work must run rounds"
        );
        assert!(
            decode_tokens >= spec_rounds,
            "{tag}: every round nets at least one token \
             ({decode_tokens} net vs {spec_rounds} rounds)"
        );
        assert!(
            accepted + spec_rounds >= decode_tokens,
            "{tag}: net progress beyond one token per round must come from \
             accepted drafts ({decode_tokens} net vs {spec_rounds} rounds + \
             {accepted} accepted)"
        );
    } else {
        assert_eq!(
            spec_rounds + accepted + rejected,
            0,
            "{tag}: autoregressive mode must keep every speculative counter zero"
        );
    }
    assert_eq!(report.completed, finished, "{tag}");
    assert_eq!(report.shed_requests, shed, "{tag}");
    assert_eq!(
        report.prefill_tokens_scheduled, prefill_tokens,
        "{tag}: prefill accounting"
    );
    // Prefill conservation: scheduled prefill plus cache hits covers every
    // finished request's prompt plus all preemption recompute.
    let prompt_and_recompute: usize = engine
        .requests()
        .iter()
        .filter(|r| r.finish_time.is_some())
        .map(|r| r.spec.prompt_tokens + r.recompute_tokens)
        .sum();
    let cached: usize = engine
        .requests()
        .iter()
        .map(|r| r.cached_prompt_tokens)
        .sum();
    assert!(
        prefill_tokens + cached >= prompt_and_recompute,
        "{tag}: prefill undercount ({prefill_tokens} + {cached} < {prompt_and_recompute})"
    );
    assert_eq!(
        report.cached_prefix_tokens, cached,
        "{tag}: cache accounting"
    );

    // Leak-freedom: after drain the KV pool holds no referenced blocks,
    // whatever mix of preemptions, CoW and evictions happened.
    assert_eq!(
        engine.kv_utilization(),
        0.0,
        "{tag}: block pool leaked ({} preemptions, {} evictions)",
        report.preemptions,
        report.blocks_evicted
    );
    report.to_json().to_string_pretty()
}

/// One random cluster configuration run to completion, checking fleet-level
/// request conservation (including autoscaler re-routing). Returns the
/// cluster report JSON as the case's fingerprint.
fn run_cluster_case(seed: u64) -> String {
    let mut rng = SplitMix64::seed_from_u64(seed ^ 0xC1_05_7E_12);
    let specs = sample_specs(&mut rng, seed);
    let config = sample_config(&mut rng);
    let router = match rng.next_usize(4) {
        0 => RouterPolicy::RoundRobin,
        1 => RouterPolicy::LeastOutstandingTokens,
        2 => RouterPolicy::decode_aware(),
        _ => RouterPolicy::PrefixAffinity,
    };
    let replicas = 1 + rng.next_usize(3);
    let mut cluster_config = ClusterConfig::new(config, replicas, router);
    // Three fleet shapes: autoscaled colocated, disaggregated (with a random
    // migration link), or a plain fixed fleet.
    match rng.next_usize(3) {
        0 => {
            cluster_config = cluster_config.with_autoscaler(AutoscalerConfig {
                min_replicas: 1,
                max_replicas: replicas + rng.next_usize(3),
                interval: 2.0 + rng.next_f64() * 6.0,
                scale_out_backlog: 20_000 + rng.next_usize(80_000),
                scale_in_backlog: 5_000 + rng.next_usize(15_000),
                sustain: 1 + rng.next_usize(2),
            });
        }
        1 => {
            let prefill = 1 + rng.next_usize(2);
            let decode = 1 + rng.next_usize(2);
            let mut roles = vec![ReplicaRole::PrefillOnly; prefill];
            roles.extend(vec![ReplicaRole::DecodeOnly; decode]);
            // A colocated replica sometimes rides along in the mixed fleet.
            if rng.next_usize(2) == 0 {
                roles.push(ReplicaRole::Colocated);
            }
            let migration = match rng.next_usize(4) {
                0 => KvMigration::free(),
                1 => KvMigration::infiniband(),
                2 => KvMigration::commodity(),
                _ => KvMigration::commodity().with_overlap(),
            };
            cluster_config.replicas = roles.len();
            cluster_config = cluster_config.with_roles(roles, migration);
        }
        _ => {}
    }
    // Streaming (sketch-backed) reporting rides along on a third of the
    // cluster cases: it must preserve every exact counter the invariants
    // below check, and stay deterministic like the sample-buffer path.
    if rng.next_usize(3) == 0 {
        cluster_config.base = cluster_config.base.clone().with_streaming_metrics(true);
    }
    let replicas = cluster_config.replicas;
    let tag = format!(
        "cluster case seed={seed} ({} replicas, {})",
        replicas,
        router.label()
    );

    let untraced_config = cluster_config.clone();
    cluster_config.base = cluster_config.base.with_tracing(TraceConfig::new());
    let mut cluster = Cluster::new(cluster_config);
    // The differential oracle for the event-driven core: the event-queue
    // run — under a random advancement worker count — must reproduce the
    // sequential lockstep sweep bit for bit.
    let workers = 1 + rng.next_usize(8);
    cluster.set_advance_workers(workers);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        cluster_case_body(&tag, &mut cluster, &specs)
    }));
    let fingerprint = match outcome {
        Ok(fp) => fp,
        Err(payload) => dump_and_repanic(seed, cluster.flight_recording(), payload),
    };
    // Inertness ride-along on a slice of cluster cases: the untraced fleet
    // must fingerprint bit-identically.
    if seed % 16 == 3 {
        let mut untraced = Cluster::new(untraced_config);
        untraced.set_advance_workers(workers);
        let fp = untraced.run(specs).to_json().to_string_pretty();
        assert_eq!(
            fp, fingerprint,
            "{tag}: tracing changed the cluster report fingerprint"
        );
    }
    fingerprint
}

fn cluster_case_body(tag: &str, cluster: &mut Cluster, specs: &[RequestSpec]) -> String {
    let report = cluster.run(specs.to_vec());
    let lockstep = cluster.run_lockstep(specs.to_vec());
    assert_eq!(
        report, lockstep,
        "{tag}: event-driven run diverged from the lockstep oracle"
    );
    assert_eq!(
        report.to_json().to_string_pretty(),
        lockstep.to_json().to_string_pretty(),
        "{tag}: event-driven vs lockstep JSON fingerprints diverged"
    );

    // Fleet-level conservation: every submitted request finished or was shed
    // exactly once, across all replicas, despite drain re-routing.
    assert_eq!(
        report.aggregate.completed + report.aggregate.shed_requests,
        specs.len(),
        "{tag}: fleet request conservation"
    );
    let mut finished_ids = 0usize;
    let mut migrated_out_ids = 0usize;
    let mut migrated_in_ids = 0usize;
    for replica in cluster.replicas() {
        assert!(replica.is_drained(), "{tag}: replica not drained");
        assert_eq!(replica.kv_utilization(), 0.0, "{tag}: replica leaked");
        for req in replica.requests() {
            if req.reassigned {
                assert!(
                    req.finish_time.is_none() && req.shed_time.is_none(),
                    "{tag}: reassigned request served on its old replica"
                );
            } else if req.migrated_out {
                // The handoff source record: prefill complete (first token
                // minted here), never finished or shed here — the decode
                // replica's copy carries the completion.
                assert!(
                    req.finish_time.is_none() && req.shed_time.is_none(),
                    "{tag}: migrated-out request also served on its source replica"
                );
                assert!(
                    req.first_token_time.is_some(),
                    "{tag}: migrated-out request never completed its prefill"
                );
                migrated_out_ids += 1;
            } else {
                assert!(
                    req.finish_time.is_some() || req.shed_time.is_some(),
                    "{tag}: request lost on a replica"
                );
                finished_ids += usize::from(req.finish_time.is_some());
                if req.migrated_in {
                    assert!(
                        req.finish_time.is_some(),
                        "{tag}: migrated-in request neither finished nor re-migrated"
                    );
                    assert!(
                        req.migration_stall >= 0.0 && req.migration_stall.is_finite(),
                        "{tag}: bad migration stall {}",
                        req.migration_stall
                    );
                    migrated_in_ids += 1;
                }
            }
        }
    }
    assert_eq!(finished_ids, report.aggregate.completed, "{tag}");
    // Handoff conservation: every exported request was imported (and then
    // finished) exactly once, fleet-wide.
    assert_eq!(
        migrated_out_ids, migrated_in_ids,
        "{tag}: handoffs lost or duplicated in flight"
    );
    assert_eq!(
        report.aggregate.migrated_out_requests, migrated_out_ids,
        "{tag}: migration accounting"
    );
    assert_eq!(
        report.aggregate.migrated_in_requests, migrated_in_ids,
        "{tag}: migration accounting (in)"
    );
    assert_eq!(
        report.aggregate.iterations,
        report
            .per_replica
            .iter()
            .map(|r| r.iterations)
            .sum::<usize>(),
        "{tag}: iteration totals"
    );
    // Fleet-wide speculative conservation: replica tallies sum to the
    // aggregate, however the router spread the work.
    assert_eq!(
        report.aggregate.spec_rounds,
        report
            .per_replica
            .iter()
            .map(|r| r.spec_rounds)
            .sum::<usize>(),
        "{tag}: speculative round totals"
    );
    assert_eq!(
        report.aggregate.draft_tokens_accepted + report.aggregate.draft_tokens_rejected,
        report
            .per_replica
            .iter()
            .map(|r| r.draft_tokens_accepted + r.draft_tokens_rejected)
            .sum::<usize>(),
        "{tag}: fleet draft-token totals"
    );
    assert!(report.busy_imbalance >= 1.0, "{tag}");
    assert!(
        report.replica_seconds >= 0.0 && report.replica_seconds.is_finite(),
        "{tag}: replica seconds"
    );
    report.to_json().to_string_pretty()
}

fn run_case(seed: u64) -> String {
    // Mostly engine cases (cheap, stepping-level invariants); every fourth
    // case exercises the cluster/autoscaler layer.
    if seed % 4 == 3 {
        run_cluster_case(seed)
    } else {
        run_engine_case(seed)
    }
}

/// Fan `cases` over the worker pool, preserving order.
fn run_pooled(cases: &[u64]) -> Vec<String> {
    let workers = test_threads().min(cases.len()).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<Option<String>>> =
        cases.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= cases.len() {
                    break;
                }
                let out = run_case(cases[i]);
                *results[i].lock().expect("result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("slot").expect("every case ran"))
        .collect()
}

/// Differential oracle for the fair-queue inertness contract: with a single
/// tenant and a single priority class, weighted fair queueing must reproduce
/// FCFS **bit for bit** on every random workload × scheduler × KV policy
/// combination — only the `+fair` system label may differ. This is the
/// property every pre-tenancy golden in the repo implicitly relies on.
#[test]
fn single_tenant_fair_queueing_matches_fcfs_on_random_configs() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::seed_from_u64(seed ^ 0x00FA_1256);
        let specs: Vec<RequestSpec> = sample_specs(&mut rng, seed)
            .into_iter()
            .map(|s| {
                s.with_tenant(TenantId::DEFAULT)
                    .with_priority(Priority::Normal)
            })
            .collect();
        let mut config = sample_config(&mut rng);
        config.fair_queue = None;
        // Weight overrides for tenants that never appear must be inert too.
        let fair_config = config.clone().with_fair_queue(
            FairQueueConfig::new()
                .with_weight(TenantId(3), 0.5 + rng.next_f64() * 3.0)
                .with_priority_preemption(rng.next_usize(2) == 0),
        );
        let fcfs = ServingEngine::new(config).run(specs.clone());
        let mut fair = ServingEngine::new(fair_config).run(specs);
        assert!(
            fair.system.contains("+fair"),
            "seed {seed}: fair-queue system label missing (got {})",
            fair.system
        );
        fair.system = fcfs.system.clone();
        assert_eq!(
            fair.to_json().to_string_pretty(),
            fcfs.to_json().to_string_pretty(),
            "seed {seed}: single-tenant fair queueing diverged from FCFS"
        );
    }
}

#[test]
fn random_configs_preserve_engine_and_cluster_invariants() {
    let cases: Vec<u64> = (0..fuzz_cases() as u64).collect();
    let pooled = run_pooled(&cases);

    // Thread-count independence, enforced in-process: a serial re-run of a
    // deterministic sample must fingerprint identically to the pooled run
    // (CI additionally repeats the whole test under two POD_TEST_THREADS
    // values).
    let stride = (cases.len() / 16).max(1);
    for i in (0..cases.len()).step_by(stride) {
        let serial = run_case(cases[i]);
        assert_eq!(
            serial, pooled[i],
            "case {} diverged between pooled and serial execution",
            cases[i]
        );
    }
}
